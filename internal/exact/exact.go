// Package exact provides exact frequency oracles used as ground truth
// throughout the evaluation: an exact sliding window (the paper's
// Definition 3.1 window frequency, and the OPT baseline of Figure 10)
// and an exact interval counter (the Interval method of Section 3).
//
// Both keep O(distinct keys) state plus, for the window, O(W) for the
// ring of in-window keys — affordable at evaluation scale, which is the
// whole point: these are oracles, not data-plane structures.
package exact

import "errors"

// SlidingWindow counts key occurrences within the last W items exactly.
type SlidingWindow[K comparable] struct {
	ring   []K
	pos    int
	filled bool
	counts map[K]int
	n      uint64
}

// NewSlidingWindow returns an exact window oracle over the last w items.
func NewSlidingWindow[K comparable](w int) (*SlidingWindow[K], error) {
	if w <= 0 {
		return nil, errors.New("exact: window must be positive")
	}
	return &SlidingWindow[K]{
		ring:   make([]K, w),
		counts: make(map[K]int),
	}, nil
}

// MustNewSlidingWindow panics on error; for tests and examples.
func MustNewSlidingWindow[K comparable](w int) *SlidingWindow[K] {
	s, err := NewSlidingWindow[K](w)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends one item, expiring the item that leaves the window.
func (s *SlidingWindow[K]) Add(k K) {
	s.n++
	if s.filled {
		old := s.ring[s.pos]
		if c := s.counts[old]; c <= 1 {
			delete(s.counts, old)
		} else {
			s.counts[old] = c - 1
		}
	}
	s.ring[s.pos] = k
	s.counts[k]++
	s.pos++
	if s.pos == len(s.ring) {
		s.pos = 0
		s.filled = true
	}
}

// Count returns k's exact frequency within the current window.
func (s *SlidingWindow[K]) Count(k K) int { return s.counts[k] }

// Window returns the configured window size W.
func (s *SlidingWindow[K]) Window() int { return len(s.ring) }

// Len returns the number of items currently inside the window
// (min(items seen, W)).
func (s *SlidingWindow[K]) Len() int {
	if s.filled {
		return len(s.ring)
	}
	return s.pos
}

// Items returns the total number of items ever added.
func (s *SlidingWindow[K]) Items() uint64 { return s.n }

// Distinct returns the number of distinct keys currently in the window
// (the table size an Aggregation report must ship).
func (s *SlidingWindow[K]) Distinct() int { return len(s.counts) }

// Each calls fn for every distinct in-window key with its count until
// fn returns false.
func (s *SlidingWindow[K]) Each(fn func(k K, count int) bool) {
	for k, c := range s.counts {
		if !fn(k, c) {
			return
		}
	}
}

// HeavyHitters returns all keys with window frequency ≥ theta·W
// (Definition 3.3 uses the full window W as the denominator, matching
// the sketches' thresholds).
func (s *SlidingWindow[K]) HeavyHitters(theta float64) map[K]int {
	threshold := theta * float64(len(s.ring))
	out := make(map[K]int)
	for k, c := range s.counts {
		if float64(c) >= threshold {
			out[k] = c
		}
	}
	return out
}

// Reset empties the oracle, reusing memory.
func (s *SlidingWindow[K]) Reset() {
	clear(s.counts)
	s.pos = 0
	s.filled = false
	s.n = 0
}

// Interval counts key occurrences exactly within back-to-back
// measurement intervals of length W, resetting at each boundary — the
// Interval method the paper argues against (Section 3, Figure 1a).
type Interval[K comparable] struct {
	counts map[K]int
	w      int
	inCur  int
	epochs uint64
}

// NewInterval returns an exact interval oracle with period w.
func NewInterval[K comparable](w int) (*Interval[K], error) {
	if w <= 0 {
		return nil, errors.New("exact: interval must be positive")
	}
	return &Interval[K]{counts: make(map[K]int), w: w}, nil
}

// MustNewInterval panics on error; for tests and examples.
func MustNewInterval[K comparable](w int) *Interval[K] {
	s, err := NewInterval[K](w)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends one item, resetting counts at interval boundaries.
func (s *Interval[K]) Add(k K) {
	if s.inCur == s.w {
		clear(s.counts)
		s.inCur = 0
		s.epochs++
	}
	s.counts[k]++
	s.inCur++
}

// Count returns k's frequency within the current (partial) interval.
func (s *Interval[K]) Count(k K) int { return s.counts[k] }

// Pos returns the number of items in the current interval.
func (s *Interval[K]) Pos() int { return s.inCur }

// Epochs returns the number of completed intervals.
func (s *Interval[K]) Epochs() uint64 { return s.epochs }

// Reset empties the oracle.
func (s *Interval[K]) Reset() {
	clear(s.counts)
	s.inCur = 0
	s.epochs = 0
}
