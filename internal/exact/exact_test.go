package exact

import (
	"testing"
	"testing/quick"
)

func TestSlidingWindowBasic(t *testing.T) {
	s := MustNewSlidingWindow[string](3)
	s.Add("a")
	s.Add("b")
	s.Add("a")
	if s.Count("a") != 2 || s.Count("b") != 1 || s.Count("zz") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", s.Count("a"), s.Count("b"))
	}
	if s.Len() != 3 || s.Window() != 3 {
		t.Fatalf("Len=%d Window=%d", s.Len(), s.Window())
	}
	s.Add("c") // evicts the first "a"
	if s.Count("a") != 1 || s.Count("c") != 1 {
		t.Fatalf("after slide: a=%d c=%d", s.Count("a"), s.Count("c"))
	}
	s.Add("c")
	s.Add("c") // window now {c,c,c}
	if s.Count("a") != 0 || s.Count("b") != 0 || s.Count("c") != 3 {
		t.Fatal("full eviction failed")
	}
	if s.Items() != 6 {
		t.Fatalf("Items = %d", s.Items())
	}
}

func TestSlidingWindowMatchesBruteForce(t *testing.T) {
	f := func(keys []uint8, wRaw uint8) bool {
		w := int(wRaw%20) + 1
		s := MustNewSlidingWindow[uint8](w)
		for i, k := range keys {
			s.Add(k)
			// Brute-force count of k in the last w items.
			lo := i + 1 - w
			if lo < 0 {
				lo = 0
			}
			want := 0
			for _, prev := range keys[lo : i+1] {
				if prev == k {
					want++
				}
			}
			if s.Count(k) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingWindowCountSumsToLen(t *testing.T) {
	s := MustNewSlidingWindow[int](50)
	for i := 0; i < 237; i++ {
		s.Add(i % 7)
	}
	total := 0
	s.Each(func(_ int, c int) bool {
		total += c
		return true
	})
	if total != 50 {
		t.Fatalf("in-window counts sum to %d, want 50", total)
	}
}

func TestSlidingWindowHeavyHitters(t *testing.T) {
	s := MustNewSlidingWindow[int](100)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			s.Add(1)
		} else {
			s.Add(100 + i)
		}
	}
	hh := s.HeavyHitters(0.4)
	if len(hh) != 1 || hh[1] != 50 {
		t.Fatalf("HeavyHitters = %v", hh)
	}
	if len(s.HeavyHitters(0.6)) != 0 {
		t.Fatal("no flow reaches 60%")
	}
}

func TestSlidingWindowReset(t *testing.T) {
	s := MustNewSlidingWindow[int](4)
	for i := 0; i < 10; i++ {
		s.Add(1)
	}
	s.Reset()
	if s.Count(1) != 0 || s.Len() != 0 || s.Items() != 0 {
		t.Fatal("Reset left state")
	}
	s.Add(2)
	if s.Count(2) != 1 || s.Len() != 1 {
		t.Fatal("post-reset add failed")
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindow[int](0); err == nil {
		t.Fatal("w=0 must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSlidingWindow should panic on bad w")
		}
	}()
	MustNewSlidingWindow[int](-1)
}

func TestIntervalResets(t *testing.T) {
	s := MustNewInterval[int](4)
	for i := 0; i < 4; i++ {
		s.Add(9)
	}
	if s.Count(9) != 4 || s.Pos() != 4 || s.Epochs() != 0 {
		t.Fatalf("end of first interval: count=%d pos=%d", s.Count(9), s.Pos())
	}
	s.Add(9) // triggers boundary reset, lands in the new interval
	if s.Count(9) != 1 || s.Pos() != 1 || s.Epochs() != 1 {
		t.Fatalf("after boundary: count=%d pos=%d epochs=%d", s.Count(9), s.Pos(), s.Epochs())
	}
}

func TestIntervalIndependentKeys(t *testing.T) {
	s := MustNewInterval[string](10)
	s.Add("x")
	s.Add("y")
	s.Add("x")
	if s.Count("x") != 2 || s.Count("y") != 1 {
		t.Fatal("per-key counts wrong")
	}
	s.Reset()
	if s.Count("x") != 0 || s.Pos() != 0 || s.Epochs() != 0 {
		t.Fatal("Reset left state")
	}
}

func TestIntervalValidation(t *testing.T) {
	if _, err := NewInterval[int](0); err == nil {
		t.Fatal("w=0 must fail")
	}
}
