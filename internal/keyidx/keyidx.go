// Package keyidx provides the flat, pointer-free key index shared by
// every hot path in this repository: a slab-backed open-addressing
// (linear probe, backward-shift delete) hash table mapping comparable
// keys to int32 slot numbers.
//
// It exists because the Go runtime map — used by the seed
// implementation for the Space Saving index, the Memento overflow
// table B, and assorted per-query scratch sets — pays for generality
// on every access: hashing through runtime indirection, bucket-group
// probing, and write-barrier bookkeeping. keyidx flattens all of that
// into three parallel slabs (hash, key, value+generation) allocated
// once at construction:
//
//   - Insert, lookup and delete are O(1) expected and touch only the
//     slabs; no per-operation allocation, ever.
//   - Flush is O(1): slots carry a generation stamp and emptying the
//     index just bumps the live generation, which Memento exploits at
//     every frame boundary (the seed's map-based Flush was O(k)) and
//     the delta-replication plane at every capture (draining a dirty
//     key set costs one stamp bump, not a scan).
//   - The hash function is caller-supplied, so layers that already
//     hash each key (internal/shard partitions by hash) can share one
//     hash computation per packet via the *H method variants instead
//     of hashing once for shard selection and again for the index.
//
// An Index never shrinks. It grows (one reallocation, amortized) only
// if the caller exceeds the capacity declared at construction; sized
// correctly — Space Saving holds at most k monitored keys — it is
// allocation-free for its whole lifetime.
//
// Instances are not safe for concurrent use, matching the
// single-writer design of the structures they index.
//
//memento:deterministic
package keyidx

import (
	"errors"
	"hash/maphash"
	"math/bits"
	"unsafe"
)

// fibMul is the 64-bit golden-ratio multiplier used to spread
// caller-supplied hashes across slots. Slot selection takes the TOP
// bits of h*fibMul, so even weak hashes (sequential integers, the
// multiplicative shard hash) fill the table evenly, and the bits used
// here stay independent of the high bits shard uses to pick a shard.
const fibMul = 0x9e3779b97f4a7c15

// slot is one table entry. gen tells whether the entry is live: a
// slot belongs to the current contents iff gen == Index.live, which
// is what makes Flush O(1).
type slot[K comparable] struct {
	hash uint64 // full caller hash; avoids rehashing on shift/compare
	key  K
	val  int32
	gen  uint32
}

// Index is an open-addressing hash index from K to int32. Construct
// with New; the zero value is not usable.
type Index[K comparable] struct {
	slots []slot[K]
	mask  uint64 // len(slots)-1 (power of two)
	shift uint   // 64 - log2(len(slots)); home = (h*fibMul)>>shift
	live  uint32 // generation stamp of live slots
	n     int    // live entries
	hash  func(K) uint64
	seed  maphash.Seed // backs the default hasher
}

// New returns an Index sized so that capacity entries fit without
// growing (load factor ≤ 1/2). hash may be nil, selecting a
// maphash.Comparable-based default with a per-Index random seed.
func New[K comparable](capacity int, hash func(K) uint64) (*Index[K], error) {
	if capacity <= 0 {
		return nil, errors.New("keyidx: capacity must be positive")
	}
	const maxCap = 1 << 29
	if capacity > maxCap {
		return nil, errors.New("keyidx: capacity too large")
	}
	idx := &Index[K]{hash: hash, seed: maphash.MakeSeed(), live: 1}
	if idx.hash == nil {
		idx.hash = defaultHasher[K](idx.seed)
	}
	idx.alloc(tableSize(capacity))
	return idx, nil
}

// DefaultHasher returns the hash function an Index constructed with a
// nil hash uses: a seeded word mix for machine-word integer keys,
// maphash.Comparable otherwise. Layers that share one hash between
// routing and the index (internal/shard) construct theirs here so
// integer keys get the fast path everywhere.
func DefaultHasher[K comparable]() func(K) uint64 {
	return defaultHasher[K](maphash.MakeSeed())
}

// defaultHasher picks the hash used when the caller supplies none:
// machine-word integer keys get a seeded splitmix finalizer (the
// runtime map's fast paths set the bar; generic maphash.Comparable
// loses ~40% to them on uint64 keys), everything else
// maphash.Comparable. The unsafe reads are guarded by the type
// switch: K is statically known to be exactly the word type read.
func defaultHasher[K comparable](seed maphash.Seed) func(K) uint64 {
	var zero K
	word64 := func() func(K) uint64 {
		s := maphash.Comparable(seed, uint64(0))
		return func(k K) uint64 { return Mix64(*(*uint64)(unsafe.Pointer(&k)) ^ s) }
	}
	word32 := func() func(K) uint64 {
		s := maphash.Comparable(seed, uint64(0))
		return func(k K) uint64 { return Mix64(uint64(*(*uint32)(unsafe.Pointer(&k))) ^ s) }
	}
	switch any(zero).(type) {
	case uint64, int64:
		return word64()
	case uint32, int32:
		return word32()
	case int, uint, uintptr:
		if unsafe.Sizeof(zero) == 8 {
			return word64()
		}
		return word32()
	}
	return func(k K) uint64 { return maphash.Comparable(seed, k) }
}

// Mix64 is the SplitMix64 finalizer: a bijective avalanche mix.
// Exported so custom hashers (hierarchy.PrefixHasher) build on the
// same primitive instead of duplicating the constants.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MustNew is New for statically valid capacities; it panics on error.
func MustNew[K comparable](capacity int, hash func(K) uint64) *Index[K] {
	idx, err := New(capacity, hash)
	if err != nil {
		panic(err)
	}
	return idx
}

// tableSize returns the power-of-two slot count for a given capacity:
// at least 2× entries, at least 8.
func tableSize(capacity int) int {
	n := 8
	for n < 2*capacity {
		n <<= 1
	}
	return n
}

func (x *Index[K]) alloc(size int) {
	x.slots = make([]slot[K], size)
	x.mask = uint64(size - 1)
	x.shift = uint(64 - bits.TrailingZeros(uint(size)))
}

// Hash returns the index's hash of key — the caller-supplied function
// or the per-Index default. Callers that need the hash for their own
// purposes (shard selection) compute it once and use the *H variants.
func (x *Index[K]) Hash(key K) uint64 { return x.hash(key) }

// home returns the preferred slot for hash h.
func (x *Index[K]) home(h uint64) uint64 { return (h * fibMul) >> x.shift }

// Len returns the number of live entries.
func (x *Index[K]) Len() int { return x.n }

// Cap returns the number of entries the index holds without growing.
func (x *Index[K]) Cap() int { return len(x.slots) / 2 }

// Flush empties the index in O(1) by advancing the live generation.
func (x *Index[K]) Flush() {
	x.n = 0
	x.live++
	if x.live == 0 { // uint32 wrap: stale stamps could collide; scrub
		for i := range x.slots {
			x.slots[i].gen = 0
		}
		x.live = 1
	}
}

// CopyInto overwrites dst with a point-in-time copy of x, reusing
// dst's slot slab when it is large enough. The copy is a straight
// memmove of the flat slabs — no per-entry work — which is what makes
// it cheap enough to run under a shard lock: the snapshot query plane
// (internal/shard) captures each shard's overflow table this way once
// per query and then reads the copy lock-free. dst may be a zero
// Index; after CopyInto it answers Get/GetH/Iterate/Len exactly like
// x did at copy time. Writing to a copy is allowed but pointless (it
// shares nothing with x).
func (x *Index[K]) CopyInto(dst *Index[K]) {
	if cap(dst.slots) < len(x.slots) {
		//memento:allow alloc "snapshot slab grows to the live table's footprint once; reused across captures"
		dst.slots = make([]slot[K], len(x.slots))
	} else {
		dst.slots = dst.slots[:len(x.slots)]
	}
	copy(dst.slots, x.slots)
	dst.mask = x.mask
	dst.shift = x.shift
	dst.live = x.live
	dst.n = x.n
	dst.hash = x.hash
	dst.seed = x.seed
}

// Get returns the value stored for key.
func (x *Index[K]) Get(key K) (int32, bool) { return x.GetH(key, x.Hash(key)) }

// GetH is Get with a caller-computed hash (which must equal
// x.Hash(key)).
//memento:noalloc
func (x *Index[K]) GetH(key K, h uint64) (int32, bool) {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			return 0, false
		}
		if s.hash == h && s.key == key {
			return s.val, true
		}
	}
}

// Put stores val for key, inserting or overwriting.
func (x *Index[K]) Put(key K, val int32) { x.PutH(key, val, x.Hash(key)) }

// PutH is Put with a caller-computed hash.
//memento:noalloc
func (x *Index[K]) PutH(key K, val int32, h uint64) {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			x.place(i, key, val, h)
			return
		}
		if s.hash == h && s.key == key {
			s.val = val
			return
		}
	}
}

// place fills a known-empty slot and grows past the load limit.
func (x *Index[K]) place(i uint64, key K, val int32, h uint64) {
	s := &x.slots[i]
	s.hash = h
	s.key = key
	s.val = val
	s.gen = x.live
	x.n++
	if 2*x.n > len(x.slots) { // load > 1/2: exceeded declared capacity
		//memento:allow alloc "growth past the declared capacity is the accepted cold path; steady-state tables are pre-sized"
		x.grow()
	}
}

// grow doubles the table and reinserts live entries. It runs only
// when the caller exceeds the capacity declared at construction.
func (x *Index[K]) grow() {
	old := x.slots
	oldLive := x.live
	x.alloc(len(old) * 2)
	x.live = 1
	x.n = 0
	for i := range old {
		if old[i].gen == oldLive {
			x.reinsert(old[i].key, old[i].val, old[i].hash)
		}
	}
}

// reinsert is PutH without the growth check (the new table fits).
func (x *Index[K]) reinsert(key K, val int32, h uint64) {
	i := x.home(h)
	for x.slots[i].gen == x.live {
		i = (i + 1) & x.mask
	}
	s := &x.slots[i]
	s.hash = h
	s.key = key
	s.val = val
	s.gen = x.live
	x.n++
}

// Insert adds key with value 0 if absent and reports whether it was
// added — set semantics for dedup scratch.
func (x *Index[K]) Insert(key K) bool { return x.InsertH(key, x.Hash(key)) }

// InsertH is Insert with a caller-computed hash.
//memento:noalloc
func (x *Index[K]) InsertH(key K, h uint64) bool {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			x.place(i, key, 0, h)
			return true
		}
		if s.hash == h && s.key == key {
			return false
		}
	}
}

// Inc adds delta to key's value, inserting it with value delta if
// absent, and returns the new value. The Memento overflow table's
// single-probe increment.
func (x *Index[K]) Inc(key K, delta int32) int32 { return x.IncH(key, delta, x.Hash(key)) }

// IncH is Inc with a caller-computed hash.
//memento:noalloc
func (x *Index[K]) IncH(key K, delta int32, h uint64) int32 {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			x.place(i, key, delta, h)
			return delta
		}
		if s.hash == h && s.key == key {
			s.val += delta
			return s.val
		}
	}
}

// Dec decrements key's value, deleting the entry when it reaches
// zero; it reports whether the key was present. The overflow table's
// single-probe forget.
func (x *Index[K]) Dec(key K) bool { return x.DecH(key, x.Hash(key)) }

// DecH is Dec with a caller-computed hash.
//memento:noalloc
func (x *Index[K]) DecH(key K, h uint64) bool {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			return false
		}
		if s.hash == h && s.key == key {
			s.val--
			if s.val <= 0 {
				x.unplace(i)
			}
			return true
		}
	}
}

// Delete removes key and reports whether it was present.
func (x *Index[K]) Delete(key K) bool { return x.DeleteH(key, x.Hash(key)) }

// DeleteH is Delete with a caller-computed hash.
//memento:noalloc
func (x *Index[K]) DeleteH(key K, h uint64) bool {
	for i := x.home(h); ; i = (i + 1) & x.mask {
		s := &x.slots[i]
		if s.gen != x.live {
			return false
		}
		if s.hash == h && s.key == key {
			x.unplace(i)
			return true
		}
	}
}

// unplace empties slot i and backward-shifts the following cluster so
// no tombstones are needed: each subsequent entry moves into the hole
// unless it already sits at (or probes no further than) its home.
func (x *Index[K]) unplace(i uint64) {
	x.n--
	for j := (i + 1) & x.mask; ; j = (j + 1) & x.mask {
		s := &x.slots[j]
		if s.gen != x.live {
			break
		}
		// Distance the entry at j has probed from its home; it may
		// move back to i only if i is still within that probe span.
		// Entries whose home lies after i stay put, but the scan must
		// continue: the cluster can still hold movable entries.
		dist := (j - x.home(s.hash)) & x.mask
		if dist >= (j-i)&x.mask {
			x.slots[i] = *s
			i = j
		}
	}
	x.slots[i].gen = x.live - 1 // mark empty (≠ live; wrap-safe until Flush scrubs)
}

// Iterate calls fn for every live entry until fn returns false. The
// order is unspecified and changes across mutations. The index must
// not be mutated during iteration. An empty index returns without
// touching the slab — freshly Flushed scratch sets (query dedup, the
// delta plane's dirty sets between quiet captures) are the common
// case and cost nothing to walk.
//memento:noalloc
func (x *Index[K]) Iterate(fn func(key K, val int32) bool) {
	if x.n == 0 {
		return
	}
	for i := range x.slots {
		if x.slots[i].gen == x.live {
			if !fn(x.slots[i].key, x.slots[i].val) {
				return
			}
		}
	}
}

// IterateH is Iterate with each entry's stored hash, so callers
// cross-probing a sibling index built on the same hash function (the
// snapshot estimate sweep probes Space Saving per overflow key) skip
// the rehash. Same contract as Iterate otherwise.
//memento:noalloc
func (x *Index[K]) IterateH(fn func(key K, val int32, h uint64) bool) {
	if x.n == 0 {
		return
	}
	for i := range x.slots {
		if x.slots[i].gen == x.live {
			if !fn(x.slots[i].key, x.slots[i].val, x.slots[i].hash) {
				return
			}
		}
	}
}
