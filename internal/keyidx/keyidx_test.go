package keyidx

import (
	"testing"

	"memento/internal/rng"
)

// oracle mirrors an Index with the runtime map the Index replaces.
type oracle map[uint64]int32

// checkAgainst verifies every key of the oracle resolves identically
// in the index, the sizes agree, and iteration visits exactly the
// oracle's entries.
func checkAgainst(t *testing.T, x *Index[uint64], o oracle) {
	t.Helper()
	if x.Len() != len(o) {
		t.Fatalf("Len = %d, oracle has %d", x.Len(), len(o))
	}
	for k, v := range o {
		got, ok := x.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), oracle %d", k, got, ok, v)
		}
	}
	seen := 0
	x.Iterate(func(k uint64, v int32) bool {
		want, ok := o[k]
		if !ok || v != want {
			t.Fatalf("Iterate visited (%d, %d); oracle (%d, %v)", k, v, want, ok)
		}
		seen++
		return true
	})
	if seen != len(o) {
		t.Fatalf("Iterate visited %d entries, oracle has %d", seen, len(o))
	}
}

// TestRandomOpsAgainstMapOracle drives a long random sequence of
// Put/Get/Delete/Inc/Dec/Insert/Flush operations through an Index and
// a map oracle in lockstep. Key range 0..127 on a 64-capacity index
// keeps the load high and deletions/collisions frequent, exercising
// the backward-shift path hard.
func TestRandomOpsAgainstMapOracle(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99, 1234567} {
		src := rng.New(seed)
		x := MustNew[uint64](64, nil)
		o := oracle{}
		for op := 0; op < 50000; op++ {
			k := uint64(src.Intn(128))
			switch src.Intn(20) {
			case 0, 1, 2, 3, 4, 5:
				v := int32(src.Intn(1000))
				x.Put(k, v)
				o[k] = v
			case 6, 7, 8:
				_, okWant := o[k]
				if ok := x.Delete(k); ok != okWant {
					t.Fatalf("seed %d op %d: Delete(%d) = %v, oracle %v", seed, op, k, ok, okWant)
				}
				delete(o, k)
			case 9, 10, 11, 12:
				got := x.Inc(k, 1)
				o[k]++
				if got != o[k] {
					t.Fatalf("seed %d op %d: Inc(%d) = %d, oracle %d", seed, op, k, got, o[k])
				}
			case 13, 14:
				_, okWant := o[k]
				if ok := x.Dec(k); ok != okWant {
					t.Fatalf("seed %d op %d: Dec(%d) = %v, oracle %v", seed, op, k, ok, okWant)
				}
				if okWant {
					if o[k] <= 1 {
						delete(o, k)
					} else {
						o[k]--
					}
				}
			case 15, 16:
				_, present := o[k]
				if added := x.Insert(k); added != !present {
					t.Fatalf("seed %d op %d: Insert(%d) = %v, oracle present %v", seed, op, k, added, present)
				}
				if !present {
					o[k] = 0
				}
			case 17, 18:
				got, ok := x.Get(k)
				want, okWant := o[k]
				if ok != okWant || (ok && got != want) {
					t.Fatalf("seed %d op %d: Get(%d) = (%d, %v), oracle (%d, %v)",
						seed, op, k, got, ok, want, okWant)
				}
			case 19:
				if src.Intn(50) == 0 { // Flushes are rare but must be total
					x.Flush()
					o = oracle{}
				}
			}
			if op%1000 == 0 {
				checkAgainst(t, x, o)
			}
		}
		checkAgainst(t, x, o)
	}
}

// FuzzOps replays a fuzzer-chosen byte string as an operation
// sequence against the map oracle, on a deliberately tiny index so
// every byte hits a crowded table.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x81, 0x42, 0xc1, 0x42})
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0xff, 0x3f, 0x7f, 0xbf})
	f.Fuzz(func(t *testing.T, ops []byte) {
		x := MustNew[uint64](4, nil)
		o := oracle{}
		for _, b := range ops {
			k := uint64(b & 0x1f) // 32 keys on a 4-capacity index
			switch b >> 5 {
			case 0, 1:
				x.Put(k, int32(b))
				o[k] = int32(b)
			case 2, 3:
				x.Inc(k, 1)
				o[k]++
			case 4:
				if got, want := x.Delete(k), hasKey(o, k); got != want {
					t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
				}
				delete(o, k)
			case 5:
				if got, want := x.Dec(k), hasKey(o, k); got != want {
					t.Fatalf("Dec(%d) = %v, want %v", k, got, want)
				}
				if hasKey(o, k) {
					if o[k] <= 1 {
						delete(o, k)
					} else {
						o[k]--
					}
				}
			case 6:
				x.Flush()
				o = oracle{}
			case 7:
				got, ok := x.Get(k)
				want, okWant := o[k]
				if ok != okWant || (ok && got != want) {
					t.Fatalf("Get(%d) = (%d, %v), oracle (%d, %v)", k, got, ok, want, okWant)
				}
			}
		}
		if x.Len() != len(o) {
			t.Fatalf("Len = %d, oracle %d", x.Len(), len(o))
		}
		for k, v := range o {
			if got, ok := x.Get(k); !ok || got != v {
				t.Fatalf("Get(%d) = (%d, %v), oracle %d", k, got, ok, v)
			}
		}
	})
}

func hasKey(o oracle, k uint64) bool {
	_, ok := o[k]
	return ok
}

// TestHashedVariantsMatch verifies the *H fast paths agree with their
// hashing counterparts when fed the index's own hash.
func TestHashedVariantsMatch(t *testing.T) {
	x := MustNew[uint64](32, func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 })
	for k := uint64(0); k < 32; k++ {
		h := x.Hash(k)
		x.PutH(k, int32(k), h)
		if v, ok := x.GetH(k, h); !ok || v != int32(k) {
			t.Fatalf("GetH(%d) = (%d, %v)", k, v, ok)
		}
		if v, ok := x.Get(k); !ok || v != int32(k) {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	for k := uint64(0); k < 32; k += 2 {
		if !x.DeleteH(k, x.Hash(k)) {
			t.Fatalf("DeleteH(%d) = false", k)
		}
	}
	for k := uint64(0); k < 32; k++ {
		_, ok := x.Get(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("after deletes: Get(%d) present=%v, want %v", k, ok, want)
		}
	}
}

// TestGrowthPastDeclaredCapacity checks the safety valve: exceeding
// the declared capacity rehashes instead of corrupting.
func TestGrowthPastDeclaredCapacity(t *testing.T) {
	x := MustNew[uint64](8, nil)
	const n = 1000
	for k := uint64(0); k < n; k++ {
		x.Put(k, int32(k))
	}
	if x.Len() != n {
		t.Fatalf("Len = %d, want %d", x.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := x.Get(k); !ok || v != int32(k) {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
}

// TestFlushIsEmptyAndReusable: entries from before a Flush must be
// invisible afterwards, including via Iterate, and slots reusable.
func TestFlushIsEmptyAndReusable(t *testing.T) {
	x := MustNew[uint64](16, nil)
	for round := 0; round < 100; round++ {
		for k := uint64(0); k < 16; k++ {
			x.Put(k, int32(round))
		}
		if x.Len() != 16 {
			t.Fatalf("round %d: Len = %d", round, x.Len())
		}
		x.Flush()
		if x.Len() != 0 {
			t.Fatalf("round %d: Len after Flush = %d", round, x.Len())
		}
		if _, ok := x.Get(3); ok {
			t.Fatalf("round %d: stale entry visible after Flush", round)
		}
		x.Iterate(func(k uint64, v int32) bool {
			t.Fatalf("round %d: Iterate visited (%d, %d) after Flush", round, k, v)
			return false
		})
	}
}

// TestZeroAllocSteadyState asserts the core guarantee: no allocation
// on any operation after construction (within declared capacity).
func TestZeroAllocSteadyState(t *testing.T) {
	x := MustNew[uint64](256, func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 })
	src := rng.New(7)
	allocs := testing.AllocsPerRun(1000, func() {
		k := uint64(src.Intn(256))
		x.Put(k, 1)
		x.Get(k)
		x.Inc(k, 1)
		x.Dec(k)
		x.Delete(k)
		if x.Len() > 200 {
			x.Flush()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkGetHit(b *testing.B) {
	x := MustNew[uint64](1024, nil)
	for k := uint64(0); k < 1024; k++ {
		x.Put(k, int32(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Get(uint64(i) & 1023)
	}
}

func BenchmarkMapGetHit(b *testing.B) {
	m := make(map[uint64]int32, 1024)
	for k := uint64(0); k < 1024; k++ {
		m[k] = int32(k)
	}
	b.ResetTimer()
	var v int32
	for i := 0; i < b.N; i++ {
		v = m[uint64(i)&1023]
	}
	_ = v
}

func BenchmarkGetHitMulHash(b *testing.B) {
	x := MustNew[uint64](1024, func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 })
	for k := uint64(0); k < 1024; k++ {
		x.Put(k, int32(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Get(uint64(i) & 1023)
	}
}

// TestCopyIntoMatchesSource pins the snapshot primitive: a copy
// answers exactly like the source at copy time, stays valid after the
// source mutates, and reuses its slab across repeated copies.
func TestCopyIntoMatchesSource(t *testing.T) {
	src := rng.New(21)
	x := MustNew[uint64](64, nil)
	o := oracle{}
	for op := 0; op < 500; op++ {
		k := uint64(src.Intn(128))
		v := int32(src.Intn(1000))
		x.Put(k, v)
		o[k] = v
		if src.Intn(8) == 0 {
			x.Delete(k)
			delete(o, k)
		}
	}

	var snap Index[uint64] // zero value: CopyInto must make it usable
	x.CopyInto(&snap)
	checkAgainst(t, &snap, o)

	// Mutating the source must not disturb the copy (and vice versa).
	frozen := oracle{}
	for k, v := range o {
		frozen[k] = v
	}
	for op := 0; op < 500; op++ {
		x.Put(uint64(src.Intn(128)), int32(op))
	}
	x.Flush()
	checkAgainst(t, &snap, frozen)
	snap.Put(999, 1)
	if _, ok := x.Get(999); ok {
		t.Fatal("writing to the copy leaked into the source")
	}
}

// TestCopyIntoReusesSlab asserts steady-state CopyInto allocates
// nothing once the destination slab fits the source.
func TestCopyIntoReusesSlab(t *testing.T) {
	x := MustNew[uint64](64, nil)
	for k := uint64(0); k < 60; k++ {
		x.Put(k, int32(k))
	}
	var snap Index[uint64]
	x.CopyInto(&snap) // first copy sizes the slab
	allocs := testing.AllocsPerRun(100, func() { x.CopyInto(&snap) })
	if allocs != 0 {
		t.Fatalf("steady-state CopyInto allocs/op = %v, want 0", allocs)
	}
}
