// noalloc enforces the repository's core performance contract: the
// paper's constant-time update path (and the snapshot/encode paths
// the CI alloc gates cover) must not allocate in steady state.
//
// A function annotated //memento:noalloc must contain no allocating
// construct, and every *module* function it statically calls must be
// allocation-free too — cleanliness is computed bottom-up per package
// and flows across packages as facts, so a fmt.Sprintf added three
// calls below Sketch.UpdateBatchHashed surfaces at the annotated
// root's package boundary.
//
// Allocating constructs:
//
//   - make, new, print/println
//   - slice and map composite literals, and &T{} (value struct
//     literals are stack-friendly and accepted)
//   - append, unless the destination is rooted at a parameter (the
//     append-style `dst = append(dst, ...)` API, where amortization
//     is the caller's contract) or at a field marked //memento:reused
//     (pooled/steady-state buffers)
//   - string concatenation and allocating conversions
//     (string<->[]byte/[]rune, integer->string)
//   - interface boxing: explicit conversion, assignment, or argument
//     passing of a non-pointer-shaped concrete value into an
//     interface
//   - closure literals that capture variables, and go statements
//   - map writes (hot paths run on internal/keyidx, not runtime maps)
//   - calls into stdlib packages outside a small allowlist
//     (sync/atomic, math, math/bits, encoding/binary, hash/maphash,
//     unsafe, sync.Mutex/RWMutex, sort/search helpers in slices);
//     sync.Pool.Get/Put is flagged explicitly — pool misses allocate
//     and want a //memento:allow alloc waiver naming the cold branch
//   - calls to module functions that are themselves dirty
//
// Indirect calls (function values such as the shared hash closures,
// interface methods) are assumed clean: the repository's hot paths
// pin them with benchmarks and the CI alloc gate. This is the one
// deliberate soundness gap; it keeps the annotation burden at zero
// for the pervasive `s.hash(x)` idiom.
//
// Deferred calls are accepted (open-coded defers do not allocate);
// panic/recover belong to nopanic.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc is the allocation-freedom analyzer.
var NoAlloc = &Analyzer{
	Name:     "noalloc",
	Category: "alloc",
	Doc: "report allocating constructs inside //memento:noalloc functions " +
		"and the module functions they transitively call",
	Run: runNoAlloc,
}

// allocSite is one reason a function is dirty.
type allocSite struct {
	pos token.Pos
	msg string
	// suppress marks sites that dirty the function for propagation
	// but are already reported elsewhere (calls to an annotated
	// callee, whose own package diagnosed it).
	suppress bool
}

// funcInfo is the per-function working state of one package run.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	sites   []allocSite
	callees map[*funcInfo][]token.Pos // same-package static calls
	clean   bool
	why     string
}

func runNoAlloc(pass *Pass) error {
	if !pass.InModule {
		return nil
	}
	infos := collectFuncs(pass)

	// Intrinsic pass: direct allocation sites plus cross-package
	// verdicts (facts are final for dependencies).
	for _, fi := range infos {
		collectAllocSites(pass, fi, infos)
	}

	// Same-package fixpoint: dirtiness propagates up call edges until
	// stable (handles recursion and any visit order). Each edge is
	// consumed the first sweep its callee is known dirty, so sites are
	// recorded exactly once; a waived call site accepts the allocation
	// and does not dirty the caller.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			for callee, sites := range fi.callees {
				if callee.clean {
					continue
				}
				delete(fi.callees, callee)
				msg := fmt.Sprintf("calls %s, which allocates: %s", callee.obj.Name(), callee.why)
				ann := pass.Ann.Funcs[callee.decl]
				suppress := ann != nil && ann.NoAlloc
				marked := false
				for _, pos := range sites {
					if pass.Ann.waive("alloc", pass.Fset.Position(pos)) {
						continue
					}
					marked = true
					fi.sites = append(fi.sites, allocSite{pos: pos, msg: msg, suppress: suppress})
				}
				if marked && fi.clean {
					fi.clean = false
					fi.why = msg
					changed = true
				}
			}
		}
	}

	// Export facts and report inside annotated functions.
	for _, fi := range infos {
		ann := pass.Ann.Funcs[fi.decl]
		annotated := ann != nil && ann.NoAlloc
		fact := pass.Facts.Funcs[FuncKey(fi.obj)]
		fact.Analyzed = true
		fact.NoAllocClean = fi.clean
		fact.NoAllocWhy = fi.why
		fact.NoAllocAnnotated = annotated
		pass.Facts.Funcs[FuncKey(fi.obj)] = fact
		if !annotated {
			continue
		}
		for _, site := range fi.sites {
			if !site.suppress {
				pass.reportf("noalloc", site.pos, "%s", site.msg)
			}
		}
	}
	return nil
}

// collectFuncs indexes every function declaration with a body.
func collectFuncs(pass *Pass) map[*types.Func]*funcInfo {
	infos := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[obj] = &funcInfo{
				decl:    d,
				obj:     obj,
				callees: make(map[*funcInfo][]token.Pos),
				clean:   true,
			}
		}
	}
	return infos
}

// collectAllocSites walks one function body recording intrinsic
// allocation sites (waived ones excluded) and same-package call
// edges. Nested closure bodies are not descended into: the closure
// literal itself is the allocation, and calling it is indirect.
func collectAllocSites(pass *Pass, fi *funcInfo, infos map[*types.Func]*funcInfo) {
	rooted := paramRootedVars(pass, fi.decl)
	dirty := func(pos token.Pos, format string, args ...any) {
		if pass.Ann.waive("alloc", pass.Fset.Position(pos)) {
			return
		}
		msg := fmt.Sprintf(format, args...)
		if fi.clean {
			fi.clean = false
			fi.why = msg
		}
		fi.sites = append(fi.sites, allocSite{pos: pos, msg: msg})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if free := capturesVariables(pass, n); free != "" {
				dirty(n.Pos(), "closure captures %s (heap-allocated environment)", free)
			}
			return false // the body runs via an indirect call
		case *ast.GoStmt:
			dirty(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				dirty(n.Pos(), "slice literal allocates")
			case *types.Map:
				dirty(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					dirty(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.Info.TypeOf(n)) {
				dirty(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, ok := pass.Info.TypeOf(idx.X).Underlying().(*types.Map); ok {
						dirty(idx.Pos(), "map write (runtime maps allocate on growth; use internal/keyidx)")
					}
				}
			}
			checkImplicitBoxing(pass, n, dirty)
		case *ast.CallExpr:
			checkCall(pass, fi, infos, n, rooted, dirty)
		}
		return true
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
}

// checkCall classifies one call expression.
func checkCall(pass *Pass, fi *funcInfo, infos map[*types.Func]*funcInfo, call *ast.CallExpr, rooted map[*types.Var]bool, dirty func(token.Pos, string, ...any)) {
	if isConversion(pass.Info, call) {
		checkConversion(pass, call, dirty)
		return
	}
	switch builtinName(pass.Info, call) {
	case "make":
		dirty(call.Pos(), "make allocates")
		return
	case "new":
		dirty(call.Pos(), "new allocates")
		return
	case "append":
		if len(call.Args) > 0 && !appendDstOK(pass, call.Args[0], rooted) {
			dirty(call.Pos(), "append may grow a non-reused buffer (root it in a parameter or mark the field //memento:reused)")
		}
		return
	case "print", "println":
		dirty(call.Pos(), "%s allocates", builtinName(pass.Info, call))
		return
	case "":
		// not a builtin
	default:
		return // len, cap, copy, delete, clear, min, max, panic, recover
	}

	fn := funcObj(pass.Info, call)
	if fn == nil {
		// Indirect call (function value, interface method): assumed
		// clean — see the package comment for the rationale.
		checkArgBoxing(pass, call, nil, dirty)
		return
	}
	checkArgBoxing(pass, call, fn, dirty)

	pkg := fn.Pkg()
	if pkg == nil { // error.Error, unsafe builtins
		return
	}
	if pass.inModulePath(pkg.Path()) {
		if pkg == pass.Pkg {
			if callee, ok := infos[fn.Origin()]; ok {
				fi.callees[callee] = append(fi.callees[callee], call.Pos())
			}
			return
		}
		fact, ok := pass.Facts.Funcs[FuncKey(fn)]
		if !ok || !fact.Analyzed {
			dirty(call.Pos(), "calls %s, which has no noalloc fact (package not analyzed?)", FuncKey(fn))
			return
		}
		if !fact.NoAllocClean {
			pos := pass.Fset.Position(call.Pos())
			if pass.Ann.waive("alloc", pos) {
				return
			}
			msg := fmt.Sprintf("calls %s, which allocates: %s", FuncKey(fn), fact.NoAllocWhy)
			if fi.clean {
				fi.clean = false
				fi.why = msg
			}
			fi.sites = append(fi.sites, allocSite{pos: call.Pos(), msg: msg, suppress: fact.NoAllocAnnotated})
		}
		return
	}
	if special, ok := stdlibAllocVerdict(fn); !ok {
		dirty(call.Pos(), "%s", special)
	}
}

// inModulePath reports whether an import path belongs to the module
// under analysis.
func (p *Pass) inModulePath(path string) bool {
	if p.ModulePath == "" {
		return false
	}
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// stdlibAllocVerdict allowlists the standard-library surface the hot
// paths are built on. ok=false returns the diagnostic message.
func stdlibAllocVerdict(fn *types.Func) (msg string, ok bool) {
	pkg := fn.Pkg().Path()
	switch pkg {
	case "sync/atomic", "math", "math/bits", "encoding/binary", "hash/maphash", "unsafe", "cmp":
		return "", true
	case "sync":
		recv := ""
		if sig, k := fn.Type().(*types.Signature); k && sig.Recv() != nil {
			recv = recvTypeName(sig.Recv().Type())
		}
		switch recv {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Locker":
			return "", true
		case "Pool":
			return "sync.Pool access (allocates on pool miss; waive the cold branch with //memento:allow alloc)", false
		}
	case "errors":
		switch fn.Name() {
		case "Is", "As", "Unwrap":
			return "", true
		}
	case "runtime":
		// Scheduler yields on spin-wait paths (SPSC backpressure) do
		// not allocate; the rest of runtime stays off-limits.
		switch fn.Name() {
		case "Gosched", "KeepAlive":
			return "", true
		}
	case "time":
		// Clock reads and their scalar accessors (obs timestamps,
		// latency spans) do not allocate. Formatting and timers stay
		// off-limits. nodet still bans these in deterministic scopes.
		switch fn.Name() {
		case "Now", "Since", "Until",
			"UnixNano", "Unix", "Nanoseconds", "Microseconds",
			"Milliseconds", "Seconds":
			return "", true
		}
	case "slices":
		for _, prefix := range []string{"Sort", "BinarySearch", "Index", "Contains", "Min", "Max", "Equal", "Reverse"} {
			if strings.HasPrefix(fn.Name(), prefix) {
				return "", true
			}
		}
	case "fmt":
		return fmt.Sprintf("calls fmt.%s, which allocates", fn.Name()), false
	}
	return fmt.Sprintf("calls %s.%s, outside the noalloc stdlib allowlist", pkg, fn.Name()), false
}

// checkConversion flags allocating conversions.
func checkConversion(pass *Pass, call *ast.CallExpr, dirty func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dst := pass.Info.TypeOf(call.Fun)
	src := pass.Info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch {
	case isString(dst) && !isString(src):
		dirty(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(dst) && isString(src):
		dirty(call.Pos(), "string to %s conversion allocates", dst)
	case types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) && !pointerShaped(src) && !zeroSized(src):
		dirty(call.Pos(), "conversion boxes %s into an interface", src)
	}
}

// checkImplicitBoxing flags assignments of non-pointer-shaped
// concrete values into interface-typed destinations.
func checkImplicitBoxing(pass *Pass, n *ast.AssignStmt, dirty func(token.Pos, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := pass.Info.TypeOf(lhs)
		rt := pass.Info.TypeOf(n.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt.Underlying()) && !types.IsInterface(rt.Underlying()) && !pointerShaped(rt) && !isUntypedNil(rt) && !zeroSized(rt) {
			dirty(n.Rhs[i].Pos(), "assignment boxes %s into an interface", rt)
		}
	}
}

// checkArgBoxing flags arguments boxed into interface parameters.
// fn may be nil for indirect calls, in which case the signature comes
// from the call expression's function type.
func checkArgBoxing(pass *Pass, call *ast.CallExpr, fn *types.Func, dirty func(token.Pos, string, ...any)) {
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	} else if t := pass.Info.TypeOf(call.Fun); t != nil {
		sig, _ = t.Underlying().(*types.Signature)
	}
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				break // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !pointerShaped(at) && !isUntypedNil(at) && !zeroSized(at) {
			dirty(arg.Pos(), "argument boxes %s into interface parameter", at)
		}
	}
}

// appendDstOK reports whether an append destination is rooted at a
// parameter or a //memento:reused field.
func appendDstOK(pass *Pass, dst ast.Expr, rooted map[*types.Var]bool) bool {
	for {
		switch e := ast.Unparen(dst).(type) {
		case *ast.Ident:
			v, ok := pass.Info.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			return rooted[v]
		case *ast.SelectorExpr:
			if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				// Origin collapses instantiated-generic field Vars onto
				// the declaration-site Var the annotation is keyed by.
				if pass.Ann.Reused[v.Origin()] {
					return true
				}
				if key, ok := fieldFactKey(pass, e); ok {
					if fact, found := pass.Facts.Fields[key]; found && fact.Reused {
						return true
					}
				}
				return false
			}
			return false
		case *ast.IndexExpr:
			dst = e.X
		case *ast.SliceExpr:
			dst = e.X
		case *ast.StarExpr:
			dst = e.X
		default:
			return false
		}
	}
}

// fieldFactKey derives the cross-package fact key of a selected
// field.
func fieldFactKey(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return "", false
	}
	base := pass.Info.TypeOf(sel.X)
	if base == nil {
		return "", false
	}
	return FieldKey(v.Pkg().Path(), recvTypeName(base), v.Name()), true
}

// paramRootedVars seeds the set of variables append may target: the
// function's parameters and receiver, plus locals initialized
// directly from them (the `q := st.queues[i]` copy-out idiom is NOT
// included — st.queues must carry //memento:reused, which
// appendDstOK resolves through the selector instead).
func paramRootedVars(pass *Pass, d *ast.FuncDecl) map[*types.Var]bool {
	rooted := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if v, ok := pass.Info.Defs[id].(*types.Var); ok {
					rooted[v] = true
				}
			}
		}
	}
	add(d.Recv)
	add(d.Type.Params)
	add(d.Type.Results) // named results participate in append-style APIs
	return rooted
}

// capturesVariables returns a description of the first outer variable
// a closure captures, or "" for capture-free literals.
func capturesVariables(pass *Pass, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured; anything declared
		// outside the literal but inside some function is.
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// zeroSized reports whether values of t occupy no storage: boxing one
// into an interface reuses the runtime's shared zero base and does not
// allocate (struct{}, [0]T, and compositions thereof).
func zeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !zeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || zeroSized(u.Elem())
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface's data
// word without boxing (slices do not: three words).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
