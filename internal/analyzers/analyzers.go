// Package analyzers is mementovet's static-analysis suite: four
// analyzers that move this repository's load-bearing runtime
// invariants — the allocation-free hot path, the per-shard lock
// discipline, panic-free decoders, and bit-deterministic encoders —
// into the type-check loop, driven by machine-readable //memento:
// annotations (DESIGN.md §8).
//
// The suite deliberately depends only on the standard library
// (go/ast, go/types): the module is dependency-free and stays that
// way. The framework mirrors the golang.org/x/tools/go/analysis shape
// — an Analyzer runs over a type-checked Pass and reports Diagnostics
// — but is scoped to exactly what the four checks need, including a
// string-keyed cross-package fact store that serializes into the
// `go vet -vettool` .vetx files (see unitchecker.go) and flows
// in-memory in the standalone driver (see driver.go).
//
// # Analyzers
//
//   - noalloc (category "alloc"): functions annotated //memento:noalloc
//     must stay allocation-free in steady state, transitively through
//     every module function they call.
//   - lockguard (category "lock"): struct fields annotated
//     "guarded by mu" may only be touched while mu is held.
//   - nopanic (category "panic"): annotated functions (and exported
//     functions matched by a package-level //memento:nopanic glob list)
//     must not reach panic, unchecked type assertions, or unguarded
//     indexing, transitively through module callees for explicit
//     panics.
//   - nodet (category "det"): packages annotated
//     //memento:deterministic must not read wall clocks, global
//     randomness, or iterate maps (map order leaks into encoders).
//
// Every diagnostic can be waived in place with
// //memento:allow <category> "reason"; waivers require a reason, are
// counted (mementovet -json reports them), and an unused waiver is
// itself a diagnostic, so suppressions cannot rot silently.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Category is the //memento:allow token that waives its findings.
	Category string
	// Doc is a one-paragraph description (mementovet help).
	Doc string
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// All returns the full suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc, LockGuard, NoPanic, NoDet}
}

// ByName resolves analyzer names (comma-separated lists are the
// caller's concern); nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File // non-test source files only
	Pkg   *types.Package
	Info  *types.Info

	// ModulePath is the module under analysis ("memento" in this
	// repository); InModule reports whether Pkg belongs to it.
	// Analyzers compute and export facts only for module packages and
	// treat everything outside as an opaque allowlisted surface.
	ModulePath string
	InModule   bool

	// Ann holds the package's parsed //memento: annotations.
	Ann *Annotations

	// Facts is the cross-package store: facts for every dependency are
	// readable, and the analyzers write this package's own facts into
	// it as they run.
	Facts *FactStore

	// Report records one finding. The driver wraps it with waiver
	// suppression, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// reportf positions and reports a finding.
func (p *Pass) reportf(analyzer string, pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncFact is the cross-package summary of one function, keyed by
// FuncKey. Both propagation-based analyzers (noalloc, nopanic) store
// their verdicts here; the zero value means "never analyzed", which
// callers outside the module surface as "unknown, assume the worst
// for noalloc / the best for nopanic" per their own documentation.
type FuncFact struct {
	// Analyzed distinguishes a computed fact from an absent one.
	Analyzed bool
	// NoAllocClean reports that the function allocates nothing in
	// steady state (waived sites excluded), transitively through
	// module callees. NoAllocWhy carries the first offending site
	// ("calls fmt.Sprintf (memento/internal/core/hhh.go:88)") when
	// dirty.
	NoAllocClean bool
	NoAllocWhy   string
	// NoAllocAnnotated marks //memento:noalloc functions: their own
	// package already diagnosed any dirtiness, so callers do not
	// re-report it.
	NoAllocAnnotated bool
	// Panics reports that the function contains, or transitively
	// calls (within the module), an explicit panic statement that is
	// not waived; PanicsWhy names the site.
	Panics    bool
	PanicsWhy string
}

// FieldFact is the cross-package summary of one struct field, keyed
// by FieldKey. Reused marks //memento:reused buffers, whose amortized
// append growth noalloc accepts.
type FieldFact struct {
	Reused bool
}

// FactStore accumulates facts across packages in dependency order.
// The standalone driver threads one store through the whole module;
// the unitchecker driver decodes dependency .vetx files into a fresh
// store and serializes the merged result out (facts re-export
// transitively, exactly like go/analysis facts, so `go vet` only has
// to supply direct dependencies' files).
type FactStore struct {
	Funcs  map[string]FuncFact
	Fields map[string]FieldFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		Funcs:  make(map[string]FuncFact),
		Fields: make(map[string]FieldFact),
	}
}

// Merge copies every fact in other into s.
func (s *FactStore) Merge(other *FactStore) {
	for k, v := range other.Funcs {
		s.Funcs[k] = v
	}
	for k, v := range other.Fields {
		s.Fields[k] = v
	}
}

// FuncKey canonicalizes a function or method object into a stable
// cross-package key: "pkgpath.Name" for functions,
// "pkgpath.Recv.Name" for methods. Generic instantiations collapse
// onto their origin, so Sketch[uint64].Update and
// Sketch[Prefix].Update share one fact.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := "_"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + "." + recvTypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// FieldKey canonicalizes a struct field object ("pkgpath.fieldName"
// scoped by its declaring position is overkill; the per-package
// struct.field pair is unique enough for annotation lookup).
func FieldKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}

// recvTypeName unwraps pointers and generic instantiations down to
// the receiver's base type name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// funcObj resolves the static callee of a call expression: a package
// function, a method on a concrete receiver, or nil for indirect
// calls (function values, interface methods) and builtins.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no static body.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// isConversion reports whether a call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the builtin's name ("append", "make", ...) when
// the call invokes one, else "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}
