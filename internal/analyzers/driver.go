// driver.go runs the whole suite over one type-checked package and
// owns the policy both drivers (standalone and unitchecker) share:
// test files are excluded, annotation parse errors are diagnostics,
// waivers suppress findings in category, and an unused waiver is
// itself a finding — a suppression must pay rent.

package analyzers

import (
	"path/filepath"
	"sort"
	"strings"

	"go/ast"
	"go/token"
	"go/types"
)

// A Result is the outcome of analyzing one package.
type Result struct {
	Diagnostics []Diagnostic
	// Waivers lists every //memento:allow in the package, used or not
	// (mementovet -json surfaces them so suppressions stay visible).
	Waivers []*Waiver
}

// AnalyzePackage parses annotations and runs every analyzer over one
// package, accumulating facts into store (which must already hold the
// facts of all module dependencies).
func AnalyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, modulePath string, store *FactStore, analyzers []*Analyzer) (*Result, error) {
	files = WithoutTestFiles(fset, files)
	ann := ParseAnnotations(fset, files, info)
	res := &Result{}
	res.Diagnostics = append(res.Diagnostics, ann.Errors...)

	inModule := modulePath != "" &&
		(pkg.Path() == modulePath || strings.HasPrefix(pkg.Path(), modulePath+"/"))

	pass := &Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ModulePath: modulePath,
		InModule:   inModule,
		Ann:        ann,
		Facts:      store,
		Report: func(d Diagnostic) {
			res.Diagnostics = append(res.Diagnostics, d)
		},
	}

	// Export //memento:reused field annotations as facts before any
	// analyzer runs, so cross-package append destinations resolve.
	exportFieldFacts(pass)

	for _, a := range analyzers {
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	// Unused waivers, in deterministic order.
	for _, byLine := range ann.Waivers {
		for _, w := range byLine {
			res.Waivers = append(res.Waivers, w)
		}
	}
	sort.Slice(res.Waivers, func(i, j int) bool {
		a, b := res.Waivers[i].Pos, res.Waivers[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, w := range res.Waivers {
		if !w.Used {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos:      w.Pos,
				Analyzer: "annot",
				Message:  "unused //memento:allow " + w.Category + " waiver (reason: " + w.Reason + ") — remove it or re-justify",
			})
		}
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return res.Diagnostics[i].Message < res.Diagnostics[j].Message
	})
	return res, nil
}

// WithoutTestFiles drops _test.go files: the analyzers target
// production invariants, and go vet feeds test-augmented packages.
func WithoutTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		name := filepath.Base(fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// exportFieldFacts publishes the package's //memento:reused fields so
// dependent packages' noalloc runs can accept appends to them.
func exportFieldFacts(pass *Pass) {
	if !pass.InModule {
		return
	}
	for v, reused := range pass.Ann.Reused {
		if !reused {
			continue
		}
		owner := fieldOwnerName(pass, v)
		if owner == "" {
			continue
		}
		pass.Facts.Fields[FieldKey(pass.Pkg.Path(), owner, v.Name())] = FieldFact{Reused: true}
	}
}

// fieldOwnerName finds the struct type name declaring a field, by
// scanning the package's type declarations.
func fieldOwnerName(pass *Pass, field *types.Var) string {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fl := range st.Fields.List {
					for _, id := range fl.Names {
						if pass.Info.Defs[id] == field {
							return ts.Name.Name
						}
					}
				}
			}
		}
	}
	return ""
}
