// Annotation grammar. All machine-readable markers share the
// //memento: prefix (no space — directive comments are hidden from
// godoc) and one line each:
//
//	//memento:noalloc
//	    Function-level. The function must be allocation-free in
//	    steady state, transitively through module callees.
//	//memento:nopanic [Glob ...]
//	    Function-level with no arguments: the function must not reach
//	    a panic. Package-level (in the package doc block) with glob
//	    arguments: every exported function whose name matches a glob
//	    (path.Match syntax) is checked, e.g. //memento:nopanic Decode* Apply*.
//	//memento:deterministic
//	    Package-level: the package must not read wall clocks or
//	    global randomness, nor iterate maps. Also accepted on a
//	    single function.
//	//memento:locked mu
//	    Function-level: callers hold the receiver's mutex field "mu"
//	    for the duration of the call, so guarded-field accesses
//	    inside need no Lock of their own.
//	//memento:locks p.mu
//	    Function-level: the function acquires parameter p's mutex
//	    field "mu" and returns holding it; lockguard treats a call as
//	    a Lock of the argument.
//	//memento:reused
//	    Field-level (doc or trailing comment): the slice buffer is
//	    pooled/reused, so noalloc accepts amortized append growth.
//	//memento:allow <category> "reason"
//	    Line-level waiver: suppresses <category> (alloc, lock, panic,
//	    det) diagnostics on the comment's line and the next line. The
//	    quoted reason is mandatory; unused waivers are diagnosed.
//
// Guarded fields use the human idiom the codebase already speaks: a
// field whose doc or trailing comment contains "guarded by <field>"
// is protected by the named sibling mutex field.
//
// ParseAnnotations is strict: anything starting //memento: that does
// not parse is a diagnostic, never silently ignored — a typo like
// //memento:noaloc must fail the build, not disable a check.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"strconv"
	"strings"
)

// Waiver categories, one per analyzer.
var categories = map[string]bool{
	"alloc": true,
	"lock":  true,
	"panic": true,
	"det":   true,
}

// LockSpec names a parameter and the mutex field acquired on it.
type LockSpec struct {
	Param string
	Field string
}

// FuncAnn is the parsed annotation set of one function.
type FuncAnn struct {
	NoAlloc       bool
	NoPanic       bool
	Deterministic bool
	Locked        []string   // receiver mutex fields held at entry
	Locks         []LockSpec // param mutexes held at return
}

// Waiver is one //memento:allow marker.
type Waiver struct {
	Pos      token.Position
	Category string
	Reason   string
	Used     bool
}

// Annotations is the parsed annotation state of one package.
type Annotations struct {
	Funcs map[*ast.FuncDecl]*FuncAnn

	// PkgDeterministic and PkgNoPanic are the package-level markers.
	PkgDeterministic bool
	PkgNoPanic       []string // exported-function globs

	// Reused and Guarded map field objects to their markers; Guarded
	// values name the protecting sibling mutex field.
	Reused  map[*types.Var]bool
	Guarded map[*types.Var]string

	// Waivers indexes //memento:allow markers by file and line; one
	// waiver covers its own line and the next.
	Waivers map[string]map[int]*Waiver

	// Errors are malformed //memento: comments (reported by the
	// driver under the "annot" name so typos fail loudly).
	Errors []Diagnostic
}

var guardedRe = regexp.MustCompile(`guarded by (\p{L}[\p{L}\p{N}_]*)`)

// ParseAnnotations extracts the package's annotation state. It is
// called once per package by the driver.
func ParseAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	ann := &Annotations{
		Funcs:   make(map[*ast.FuncDecl]*FuncAnn),
		Reused:  make(map[*types.Var]bool),
		Guarded: make(map[*types.Var]string),
		Waivers: make(map[string]map[int]*Waiver),
	}
	for _, f := range files {
		// Waivers and malformed-marker detection scan every comment
		// in the file, wherever it hangs in the AST.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann.parseComment(fset, c)
			}
		}
		// Package-level markers live in the package doc block.
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				ann.parsePackageMarker(fset, c)
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fa := ann.parseFuncDoc(fset, d); fa != nil {
					ann.Funcs[d] = fa
				}
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							ann.parseFields(fset, info, st)
						}
					}
				}
			}
		}
	}
	return ann
}

// directive splits a //memento: comment into verb and argument rest;
// ok is false for comments that are not memento directives at all.
func directive(c *ast.Comment) (verb, rest string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//") {
		return "", "", false
	}
	body := text[2:]
	if !strings.HasPrefix(body, "memento:") {
		// A spaced variant ("// memento:...") is a near-miss typo the
		// meta check must catch, so classify it as a directive too.
		trimmed := strings.TrimLeft(body, " \t")
		if !strings.HasPrefix(trimmed, "memento:") {
			return "", "", false
		}
		return "", "malformed spacing", true
	}
	body = body[len("memento:"):]
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest), true
}

// parseComment handles waivers and flags malformed directives.
func (ann *Annotations) parseComment(fset *token.FileSet, c *ast.Comment) {
	verb, rest, ok := directive(c)
	if !ok {
		return
	}
	pos := fset.Position(c.Pos())
	fail := func(format string, args ...any) {
		ann.Errors = append(ann.Errors, Diagnostic{
			Pos:      pos,
			Analyzer: "annot",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	switch verb {
	case "":
		fail("malformed //memento: directive (no space allowed before \"memento:\")")
	case "allow":
		cat, reason, ok := parseAllow(rest)
		if !ok {
			fail(`malformed waiver %q: want //memento:allow <category> "reason"`, c.Text)
			return
		}
		if !categories[cat] {
			fail("unknown waiver category %q (want alloc, lock, panic or det)", cat)
			return
		}
		if reason == "" {
			fail("waiver for %q needs a non-empty reason string", cat)
			return
		}
		byLine := ann.Waivers[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]*Waiver)
			ann.Waivers[pos.Filename] = byLine
		}
		byLine[pos.Line] = &Waiver{Pos: pos, Category: cat, Reason: reason}
	case "noalloc", "nopanic", "deterministic", "locked", "locks", "reused":
		// Validated in context (parseFuncDoc / parsePackageMarker /
		// parseFields); here we only catch stray argument shapes that
		// no context would accept.
	default:
		fail("unknown //memento: directive %q", verb)
	}
}

// parseAllow splits `<category> "reason"`.
func parseAllow(rest string) (cat, reason string, ok bool) {
	cat, quoted, found := strings.Cut(rest, " ")
	if !found || cat == "" {
		return "", "", false
	}
	quoted = strings.TrimSpace(quoted)
	reason, err := strconv.Unquote(quoted)
	if err != nil {
		return "", "", false
	}
	return cat, reason, true
}

// parsePackageMarker handles directives inside the package doc block.
func (ann *Annotations) parsePackageMarker(fset *token.FileSet, c *ast.Comment) {
	verb, rest, ok := directive(c)
	if !ok || verb == "" || verb == "allow" {
		return
	}
	pos := fset.Position(c.Pos())
	switch verb {
	case "deterministic":
		if rest != "" {
			ann.Errors = append(ann.Errors, Diagnostic{Pos: pos, Analyzer: "annot",
				Message: "//memento:deterministic takes no arguments"})
			return
		}
		ann.PkgDeterministic = true
	case "nopanic":
		globs := strings.Fields(rest)
		if len(globs) == 0 {
			ann.Errors = append(ann.Errors, Diagnostic{Pos: pos, Analyzer: "annot",
				Message: "package-level //memento:nopanic needs function-name globs"})
			return
		}
		for _, g := range globs {
			if _, err := path.Match(g, "x"); err != nil {
				ann.Errors = append(ann.Errors, Diagnostic{Pos: pos, Analyzer: "annot",
					Message: fmt.Sprintf("bad glob %q in //memento:nopanic", g)})
				return
			}
		}
		ann.PkgNoPanic = append(ann.PkgNoPanic, globs...)
	default:
		ann.Errors = append(ann.Errors, Diagnostic{Pos: pos, Analyzer: "annot",
			Message: fmt.Sprintf("//memento:%s is not a package-level directive", verb)})
	}
}

// parseFuncDoc extracts a function's annotation set from its doc
// comment; nil when unannotated.
func (ann *Annotations) parseFuncDoc(fset *token.FileSet, d *ast.FuncDecl) *FuncAnn {
	if d.Doc == nil {
		return nil
	}
	var fa *FuncAnn
	get := func() *FuncAnn {
		if fa == nil {
			fa = &FuncAnn{}
		}
		return fa
	}
	for _, c := range d.Doc.List {
		verb, rest, ok := directive(c)
		if !ok || verb == "" || verb == "allow" {
			continue
		}
		pos := fset.Position(c.Pos())
		fail := func(format string, args ...any) {
			ann.Errors = append(ann.Errors, Diagnostic{Pos: pos, Analyzer: "annot",
				Message: fmt.Sprintf(format, args...)})
		}
		switch verb {
		case "noalloc":
			if rest != "" {
				fail("//memento:noalloc takes no arguments")
				continue
			}
			get().NoAlloc = true
		case "nopanic":
			if rest != "" {
				fail("function-level //memento:nopanic takes no arguments")
				continue
			}
			get().NoPanic = true
		case "deterministic":
			if rest != "" {
				fail("//memento:deterministic takes no arguments")
				continue
			}
			get().Deterministic = true
		case "locked":
			if rest == "" || strings.ContainsAny(rest, ". \t") {
				fail("//memento:locked wants a single receiver mutex field name")
				continue
			}
			if d.Recv == nil {
				fail("//memento:locked is only meaningful on methods")
				continue
			}
			get().Locked = append(get().Locked, rest)
		case "locks":
			param, field, found := strings.Cut(rest, ".")
			if !found || param == "" || field == "" || strings.ContainsAny(field, ". \t") {
				fail("//memento:locks wants <param>.<mutexField>")
				continue
			}
			if !hasParam(d, param) {
				fail("//memento:locks names unknown parameter %q", param)
				continue
			}
			get().Locks = append(get().Locks, LockSpec{Param: param, Field: field})
		case "reused":
			fail("//memento:reused belongs on a struct field, not a function")
		}
	}
	return fa
}

// hasParam reports whether the declaration has a parameter (or
// receiver) with the given name.
func hasParam(d *ast.FuncDecl, name string) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if id.Name == name {
					return true
				}
			}
		}
		return false
	}
	return check(d.Type.Params) || check(d.Recv)
}

// parseFields extracts field-level markers: //memento:reused and the
// "guarded by mu" idiom, from field doc or trailing comments.
func (ann *Annotations) parseFields(fset *token.FileSet, info *types.Info, st *ast.StructType) {
	for _, field := range st.Fields.List {
		// CommentGroup.Text() strips directive-style comments — which
		// is exactly what //memento: markers are — so walk the raw
		// comment list instead.
		text := ""
		for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				text += c.Text + "\n"
			}
		}
		if text == "" {
			continue
		}
		reused := strings.Contains(text, "memento:reused")
		var guard string
		if m := guardedRe.FindStringSubmatch(text); m != nil {
			guard = m[1]
		}
		if !reused && guard == "" {
			continue
		}
		for _, id := range field.Names {
			obj, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			if reused {
				ann.Reused[obj] = true
			}
			if guard != "" {
				ann.Guarded[obj] = guard
			}
		}
	}
}

// waive consumes a waiver covering pos for the given category,
// returning true when the diagnostic is suppressed. A waiver on line
// L covers lines L and L+1, so it works both as a trailing comment
// and as a standalone line above the offending statement.
func (ann *Annotations) waive(category string, pos token.Position) bool {
	byLine := ann.Waivers[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if w := byLine[line]; w != nil && w.Category == category {
			w.Used = true
			return true
		}
	}
	return false
}

// NoPanicScope reports whether the function is in nopanic's scope:
// annotated directly, or exported and matching a package glob.
func (ann *Annotations) NoPanicScope(d *ast.FuncDecl) bool {
	if fa := ann.Funcs[d]; fa != nil && fa.NoPanic {
		return true
	}
	if !d.Name.IsExported() {
		return false
	}
	for _, g := range ann.PkgNoPanic {
		if ok, _ := path.Match(g, d.Name.Name); ok {
			return true
		}
	}
	return false
}
