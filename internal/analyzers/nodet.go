// nodet keeps the replication and codec planes bit-deterministic: a
// package annotated //memento:deterministic (or a single function
// annotated the same way) encodes the same state to the same bytes on
// every node, so base+delta chains hash identically and format-v1
// goldens never drift.
//
// Three nondeterminism sources are flagged:
//
//   - wall-clock reads: time.Now / time.Since / time.Until
//   - global randomness: any call into math/rand or math/rand/v2
//   - map iteration: `range` over a map-typed expression — Go
//     randomizes iteration order, so any ordered output derived from
//     it (encoders, sorted-by-count snapshots with unsorted ties) is
//     nondeterministic
//
// The collect-then-sort idiom — range a map into a scratch slice,
// sort by the full key, then emit — is legitimate; the range line
// still flags, and carries a //memento:allow det waiver whose reason
// names the sort that restores the order. That keeps every map
// iteration in a deterministic package an explicit, audited decision.

package analyzers

import (
	"go/ast"
	"go/types"
)

// NoDet is the determinism analyzer.
var NoDet = &Analyzer{
	Name:     "nodet",
	Category: "det",
	Doc: "report wall-clock reads, global randomness and map iteration " +
		"inside //memento:deterministic packages or functions",
	Run: runNoDet,
}

func runNoDet(pass *Pass) error {
	if !pass.InModule {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			scoped := pass.Ann.PkgDeterministic
			if fa := pass.Ann.Funcs[d]; fa != nil && fa.Deterministic {
				scoped = true
			}
			if !scoped {
				continue
			}
			checkDeterminism(pass, d)
		}
	}
	return nil
}

func checkDeterminism(pass *Pass, d *ast.FuncDecl) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if !pass.Ann.waive("det", pass.Fset.Position(n.Pos())) {
						pass.reportf("nodet", n.Pos(),
							"map iteration order is nondeterministic (collect, sort by full key, then emit — and waive with the sort named)")
					}
				}
			}
		case *ast.CallExpr:
			fn := funcObj(pass.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					if !pass.Ann.waive("det", pass.Fset.Position(n.Pos())) {
						pass.reportf("nodet", n.Pos(),
							"time.%s reads the wall clock; deterministic code takes timestamps as inputs", fn.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				if !pass.Ann.waive("det", pass.Fset.Position(n.Pos())) {
					pass.reportf("nodet", n.Pos(),
						"%s.%s is nondeterministic; thread seeds or identities in explicitly", fn.Pkg().Path(), fn.Name())
				}
			}
		}
		return true
	})
	return
}
