package main

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	g, err := parseSpec("./internal/shard:BenchmarkIngestSingle:200000x")
	if err != nil {
		t.Fatal(err)
	}
	if g.pkg != "./internal/shard" || g.bench != "BenchmarkIngestSingle" || g.time != "200000x" {
		t.Fatalf("parsed %+v", g)
	}
	for _, bad := range []string{
		"",
		"pkg:BenchmarkX",
		"pkg:BenchmarkX:1x:extra",
		"pkg::1x",
		"pkg:TestNotABenchmark:1x",
	} {
		if _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) accepted", bad)
		}
	}
}

func TestCheckOutput(t *testing.T) {
	const clean = `goos: linux
BenchmarkIngestSingle-8   	  200000	        52.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	memento/internal/shard	0.1s
`
	allocs, err := checkOutput(clean, "BenchmarkIngestSingle")
	if err != nil || allocs != 0 {
		t.Fatalf("clean run: allocs=%d err=%v", allocs, err)
	}

	const dirty = `BenchmarkIngestSingle-8   	  200000	        52.1 ns/op	      24 B/op	       3 allocs/op
`
	allocs, err = checkOutput(dirty, "BenchmarkIngestSingle")
	if err != nil || allocs != 3 {
		t.Fatalf("dirty run: allocs=%d err=%v", allocs, err)
	}

	// A benchmark sharing the gated name as a prefix must not satisfy
	// the gate — this is exactly what the old shell pipeline got wrong.
	const prefixOnly = `BenchmarkIngestSingleLarge-8   	  1000	        99 ns/op	       0 B/op	       0 allocs/op
`
	if _, err := checkOutput(prefixOnly, "BenchmarkIngestSingle"); err == nil ||
		!strings.Contains(err.Error(), "no result line") {
		t.Fatalf("prefix match accepted: %v", err)
	}

	// Two result lines for one name is ambiguous, not a pass.
	const doubled = clean + clean
	if _, err := checkOutput(doubled, "BenchmarkIngestSingle"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous output accepted: %v", err)
	}
}
