// allocgate enforces the repo's zero-allocation benchmark gates. Each
// positional argument is one gate spec:
//
//	<package>:<BenchmarkName>:<benchtime>
//
// e.g. ./internal/shard:BenchmarkIngestSingle:200000x. For every spec
// it runs
//
//	go test -run=NONE -bench ^<name>$ -benchmem -benchtime=<benchtime> <package>
//
// and parses the -benchmem result line exactly: the benchmark name
// must match <BenchmarkName> up to the -<GOMAXPROCS> suffix the
// testing package appends, exactly one result line must match (zero
// means the benchmark was renamed or deleted; several mean the anchor
// is ambiguous), and its allocs/op column must be 0. This replaces a
// shell prefix-match pipeline that would silently pass if a benchmark
// disappeared or a second benchmark shared the prefix.
//
// Exit status: 0 when every gate holds, 1 on any violation or parse
// failure, 2 on usage errors.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// gate is one parsed spec.
type gate struct {
	pkg   string
	bench string
	time  string
}

func parseSpec(s string) (gate, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return gate{}, fmt.Errorf("spec %q: want <package>:<BenchmarkName>:<benchtime>", s)
	}
	if !strings.HasPrefix(parts[1], "Benchmark") {
		return gate{}, fmt.Errorf("spec %q: %q does not name a benchmark", s, parts[1])
	}
	return gate{pkg: parts[0], bench: parts[1], time: parts[2]}, nil
}

// resultLine matches one -benchmem benchmark result:
//
//	BenchmarkName-8  2000  512 ns/op  0 B/op  0 allocs/op
//
// The name group captures everything before the optional -N
// GOMAXPROCS suffix.
var resultLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+\S+ ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// checkOutput scans `go test -benchmem` output for exactly one result
// line of the named benchmark and returns its allocs/op.
func checkOutput(out, bench string) (int64, error) {
	var allocs int64
	matches := 0
	for _, line := range strings.Split(out, "\n") {
		m := resultLine.FindStringSubmatch(line)
		if m == nil || m[1] != bench {
			continue
		}
		matches++
		n, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("unparseable allocs/op in %q: %v", line, err)
		}
		allocs = n
	}
	switch matches {
	case 0:
		return 0, fmt.Errorf("no result line for %s — renamed, deleted, or did not run", bench)
	case 1:
		return allocs, nil
	default:
		return 0, fmt.Errorf("%d result lines for %s — ambiguous gate", matches, bench)
	}
}

func runGate(g gate) error {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench", "^"+g.bench+"$", "-benchmem", "-benchtime="+g.time, g.pkg)
	out, err := cmd.CombinedOutput()
	fmt.Print(string(out))
	if err != nil {
		return fmt.Errorf("%s: go test failed: %v", g.pkg, err)
	}
	allocs, err := checkOutput(string(out), g.bench)
	if err != nil {
		return fmt.Errorf("%s: %v", g.pkg, err)
	}
	if allocs != 0 {
		return fmt.Errorf("%s: %s allocates: %d allocs/op (want 0)", g.pkg, g.bench, allocs)
	}
	fmt.Printf("allocgate: %s %s: 0 allocs/op\n", g.pkg, g.bench)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: allocgate <package>:<BenchmarkName>:<benchtime> ...")
		os.Exit(2)
	}
	gates := make([]gate, 0, len(os.Args)-1)
	for _, a := range os.Args[1:] {
		g, err := parseSpec(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allocgate:", err)
			os.Exit(2)
		}
		gates = append(gates, g)
	}
	failed := false
	for _, g := range gates {
		if err := runGate(g); err != nil {
			fmt.Fprintln(os.Stderr, "allocgate:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
