// Package nodet exercises the determinism analyzer; the package-level
// marker puts every function in scope.
//
//memento:deterministic
package nodet

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// Roll draws global randomness.
func Roll() uint64 {
	return rand.Uint64() // want `math/rand/v2\.Uint64 is nondeterministic`
}

// Sum iterates a map in hash order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// Keys collects then sorts — the documented fix — waiving the collect
// loop with the sort named.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//memento:allow det "order fixed by the sort.Strings below"
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
