// Package nopanic exercises the panic analyzer. The package-level
// glob puts every exported Decode* function in scope; mustPositive is
// out of scope itself but its explicit panic propagates to scoped
// callers.
//
//memento:nopanic Decode*
package nopanic

import "encoding/binary"

// mustPositive panics; any scoped caller inherits the finding.
func mustPositive(v int) int {
	if v <= 0 {
		panic("not positive")
	}
	return v
}

// DecodeExplicit reaches a panic directly.
func DecodeExplicit(b []byte) int {
	if len(b) < 1 {
		panic("empty input") // want `panics at`
	}
	return int(b[0])
}

// DecodeProp calls a panicking helper.
func DecodeProp(b []byte) int {
	if len(b) < 1 {
		return 0
	}
	return mustPositive(int(b[0])) // want `calls mustPositive, which can panic`
}

// DecodeAssert uses a bare type assertion.
func DecodeAssert(v interface{}) int {
	return v.(int) // want `type assertion without comma-ok can panic`
}

// DecodeAssertOK uses the comma-ok form.
func DecodeAssertOK(v interface{}) int {
	if n, ok := v.(int); ok {
		return n
	}
	return 0
}

// DecodeIndex indexes past any proven length.
func DecodeIndex(b []byte) int {
	return int(b[4]) // want `index on b not proven in bounds`
}

// DecodeIndexGuarded proves the bound first.
func DecodeIndexGuarded(b []byte) int {
	if len(b) < 5 {
		return 0
	}
	return int(b[4])
}

// DecodeSlice takes a subslice no condition has proven.
func DecodeSlice(b []byte) []byte {
	return b[2:6] // want `slice bound .* not proven in range`
}

// DecodeWidth reads a fixed-width field without a length check.
func DecodeWidth(b []byte) uint32 {
	return binary.BigEndian.Uint32(b) // want `binary\.Uint32 needs 4 readable bytes`
}

// DecodeWidthGuarded checks the length first.
func DecodeWidthGuarded(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// DecodeLoop iterates with a proven loop index.
func DecodeLoop(b []byte) int {
	total := 0
	for i := 0; i < len(b); i++ {
		total += int(b[i])
	}
	return total
}

// DecodeWaived carries a justified waiver.
func DecodeWaived(b []byte) int {
	//memento:allow panic "caller contract: b always has 8 bytes"
	return int(b[7])
}
