// Package noalloc exercises the noalloc analyzer: every allocating
// construct it knows how to flag, and the shapes it must accept
// (parameter-rooted appends, //memento:reused buffers, zero-sized
// boxing, justified waivers).
package noalloc

import (
	"fmt"
	"runtime"
	"time"
)

// sink defeats dead-code elimination without allocating.
var sink int

// boxed is an interface destination for the boxing checks.
var boxed interface{}

// Point is big enough that boxing it allocates; Empty is zero-sized
// and boxes through the runtime's shared zero base.
type Point struct{ X, Y int }

type Empty struct{}

// ring pairs a pooled buffer with a plain one: appends to the first
// are amortized, appends to the second are findings.
type ring struct {
	buf   []int //memento:reused
	plain []int
}

// noop is allocation-free filler for the go-statement case.
func noop() {}

// helper is unannotated; the fixpoint still computes its fact, and
// annotated callers inherit the dirtiness.
func helper() []int {
	return make([]int, 4)
}

// takesAny forces its argument into an interface.
func takesAny(v interface{}) { _ = v }

//memento:noalloc
func makes() []int {
	return make([]int, 8) // want `make allocates`
}

//memento:noalloc
func news() *Point {
	return new(Point) // want `new allocates`
}

//memento:noalloc
func sprints(v int) {
	s := fmt.Sprintf("%d", v) // want `calls fmt\.Sprintf, which allocates` `argument boxes int into interface parameter`
	sink = len(s)
}

//memento:noalloc
func concats(a, b string) {
	sink = len(a + b) // want `string concatenation allocates`
}

//memento:noalloc
func literals() {
	s := []int{1, 2}   // want `slice literal allocates`
	m := map[int]int{} // want `map literal allocates`
	sink = len(s) + len(m)
}

//memento:noalloc
func escapes() *Point {
	return &Point{X: 1} // want `&composite literal escapes to the heap`
}

//memento:noalloc
func captures(x int) func() int {
	f := func() int { return x } // want `closure captures x \(heap-allocated environment\)`
	return f
}

//memento:noalloc
func launches() {
	go noop() // want `go statement allocates a goroutine`
}

//memento:noalloc
func mapWrites(m map[int]int) {
	m[1] = 2 // want `map write \(runtime maps allocate on growth; use internal/keyidx\)`
}

//memento:noalloc
func converts(b []byte) string {
	return string(b) // want `conversion to string allocates`
}

//memento:noalloc
func convertsBack(s string) []byte {
	return []byte(s) // want `string to \[\]byte conversion allocates`
}

//memento:noalloc
func boxes(p Point) {
	boxed = p // want `assignment boxes .*Point into an interface`
}

//memento:noalloc
func boxesZero(e Empty) {
	boxed = e // zero-sized: boxing reuses runtime.zerobase, no finding
}

//memento:noalloc
func argBoxes(p Point) {
	takesAny(p) // want `argument boxes .*Point into interface parameter`
}

//memento:noalloc
func growsPlain(r *ring, v int) {
	r.plain = append(r.plain, v) // want `append may grow a non-reused buffer`
}

//memento:noalloc
func growsReused(r *ring, v int) {
	r.buf = append(r.buf, v) // reused buffer: amortized growth accepted
}

//memento:noalloc
func growsParam(dst []int, v int) []int {
	return append(dst, v) // parameter-rooted: the caller owns the buffer
}

//memento:noalloc
func propagates() {
	sink = len(helper()) // want `calls helper, which allocates`
}

//memento:noalloc
func yields() {
	runtime.Gosched() // scheduler yield: allowlisted, no finding
	sink++
}

//memento:noalloc
func stamps() {
	// Clock reads and scalar accessors: allowlisted, no finding
	// (obs timestamps latency spans on hot paths).
	sink = int(time.Since(time.Now()).Nanoseconds())
}

//memento:noalloc
func waived() []int {
	//memento:allow alloc "cold path: exercised once per construction"
	return make([]int, 8)
}

// want+1 `unused //memento:allow alloc waiver`
//memento:allow alloc "stale: nothing on the next line allocates"
func quiet() { sink++ }
