// Package lockguard exercises the lock-discipline analyzer on the
// shape the real shard code uses: a mutex field next to the state it
// guards, annotated with the human "guarded by mu" idiom.
package lockguard

import "sync"

// slot mirrors internal/shard's per-shard slot.
type slot struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Locked reads n under mu, the way every shard accessor does.
func (s *slot) Locked() int {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	return v
}

// DeferLocked holds mu through a defer, the checkpoint-path idiom.
func (s *slot) DeferLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Unlocked is the acceptance case: the mu.Lock() line deleted.
func (s *slot) Unlocked() int {
	return s.n // want `access to n \(guarded by mu\) without holding s\.mu`
}

// AfterUnlock touches n after releasing mu.
func (s *slot) AfterUnlock() int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.n // want `access to n \(guarded by mu\) without holding s\.mu`
}

// WriteUnlocked stores without the lock; writes are findings too.
func (s *slot) WriteUnlocked(v int) {
	s.n = v // want `access to n \(guarded by mu\) without holding s\.mu`
}

// peek requires mu held at entry; inside, the guarded access needs no
// Lock of its own.
//
//memento:locked mu
func (s *slot) peek() int { return s.n }

// CallsPeekHeld holds mu across the peek call.
func (s *slot) CallsPeekHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peek()
}

// CallsPeekUnheld calls a locked method without the lock.
func (s *slot) CallsPeekUnheld() int {
	return s.peek() // want `call to peek requires holding s\.mu \(//memento:locked mu\)`
}

// NewSlot writes the guarded field before the instance is shared —
// the constructor waiver idiom the real tree uses.
func NewSlot(n int) *slot {
	s := &slot{}
	//memento:allow lock "instance under construction; not yet shared"
	s.n = n
	return s
}
