// Package noallocdep is cross-package material for the fact store:
// an allocating function whose verdict must travel to dependents, a
// clean one, and a reused buffer field dependents may append to.
package noallocdep

// Alloc allocates; the fact crosses the package boundary.
func Alloc() []int {
	return make([]int, 16)
}

// Clean is allocation-free; dependents calling it stay clean.
func Clean(x int) int { return x + 1 }

// Buf carries a pooled, reused append destination.
type Buf struct {
	Data []int //memento:reused
}
