// Package noallocuse consumes noallocdep's facts: the allocating
// verdict, the clean verdict, and the //memento:reused field fact all
// arrive through the store, not through source inspection.
package noallocuse

import "vettest/noallocdep"

var sink int

//memento:noalloc
func callsAlloc() {
	sink = len(noallocdep.Alloc()) // want `calls vettest/noallocdep\.Alloc, which allocates`
}

//memento:noalloc
func callsClean() {
	sink = noallocdep.Clean(sink)
}

//memento:noalloc
func fillsReused(b *noallocdep.Buf, v int) {
	b.Data = append(b.Data, v) // cross-package reused field: accepted
}
