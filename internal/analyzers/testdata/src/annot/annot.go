// Package annot exercises the annotation parser: malformed markers
// are findings, never silent no-ops — a typo'd directive must fail
// the build, not disable a check.
package annot

// want+1 `unknown //memento: directive "noaloc"`
//memento:noaloc
func Typo() {}

// want+1 `malformed waiver .*: want //memento:allow <category> "reason"`
//memento:allow alloc missing quotes
func BadWaiver() {}

// want+1 `unknown waiver category "perf"`
//memento:allow perf "not a category"
func BadCategory() {}
