// lockguard enforces the per-shard locking discipline: a struct field
// whose comment says "guarded by mu" may only be read or written
// while the sibling mutex named mu is held on the same base value.
//
// Lock state is tracked textually: after sl.mu.Lock() the string
// "sl.mu" is held, and an access to sl.s (s guarded by mu) requires
// exactly "sl.mu". This matches the codebase's idiom — guarded
// accesses and their Lock calls always share a base expression in the
// same function — and refuses to guess about aliasing: copying a
// locked pointer into a second name defeats the match, so either
// avoid the alias or waive the line with //memento:allow lock.
//
// Holds are established by:
//
//   - sl.mu.Lock() / sl.mu.RLock() statements; Unlock/RUnlock end the
//     hold. defer sl.mu.Unlock() does NOT end it (the hold survives
//     until return).
//   - //memento:locked mu on a method: the receiver's mu is held at
//     entry. Calling such a method is itself checked — the caller
//     must hold recv.mu at the call site.
//   - //memento:locks p.mu on a same-package function: a call
//     lockShardRead(sl) leaves "sl.mu" held afterwards.
//
// Branches merge by intersection (a lock held only on one arm of an
// if is not held after it); loop bodies are analyzed once with the
// entry state; closure literals are analyzed with the state at their
// creation point (the sort-under-lock idiom). Guarded fields are
// unexported, so the whole analysis is intra-package and needs no
// facts.

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard is the guarded-field discipline analyzer.
var LockGuard = &Analyzer{
	Name:     "lockguard",
	Category: "lock",
	Doc: "report accesses to \"guarded by mu\" struct fields made without " +
		"holding the named mutex on the same base expression",
	Run: runLockGuard,
}

// lockState is the set of held mutexes, keyed by rendered expression
// ("sl.mu", "h.slots[i].mu").
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect keeps only locks held in both states.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// lockguardPass bundles the per-package state.
type lockguardPass struct {
	pass *Pass
	// declAnn maps function objects to their annotation, for resolving
	// //memento:locked and //memento:locks at call sites.
	declAnn map[*types.Func]*FuncAnn
}

func runLockGuard(pass *Pass) error {
	if !pass.InModule {
		return nil
	}
	if len(pass.Ann.Guarded) == 0 {
		return nil
	}
	lp := &lockguardPass{pass: pass, declAnn: make(map[*types.Func]*FuncAnn)}
	for decl, fa := range pass.Ann.Funcs {
		if obj, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
			lp.declAnn[obj] = fa
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			held := make(lockState)
			if fa := pass.Ann.Funcs[d]; fa != nil && d.Recv != nil && len(d.Recv.List) > 0 && len(d.Recv.List[0].Names) > 0 {
				recv := d.Recv.List[0].Names[0].Name
				for _, mu := range fa.Locked {
					held[recv+"."+mu] = true
				}
			}
			lp.walkStmts(d.Body.List, held)
		}
	}
	return nil
}

// walkStmts interprets a statement sequence, returning the lock state
// at its end. terminated reports that control cannot fall out of the
// sequence (return/branch/panic on every path taken so far).
func (lp *lockguardPass) walkStmts(stmts []ast.Stmt, held lockState) (out lockState, terminated bool) {
	for _, st := range stmts {
		var term bool
		held, term = lp.walkStmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (lp *lockguardPass) walkStmt(st ast.Stmt, held lockState) (lockState, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if lp.applyLockCall(s.X, held) {
			return held, false
		}
		lp.checkExpr(s.X, held)
		lp.applyLocksAnnotations(s.X, held)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if builtinName(lp.pass.Info, call) == "panic" {
				return held, true
			}
		}
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lp.checkExpr(e, held)
			lp.applyLocksAnnotations(e, held)
		}
		for _, e := range s.Lhs {
			lp.checkExpr(e, held)
		}
		return held, false
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the hold until return; other
		// deferred calls are checked with the current state.
		if name, ok := lp.lockMethod(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return held, false
		}
		lp.checkExpr(s.Call, held)
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lp.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return lp.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lp.walkStmt(s.Init, held)
		}
		lp.checkExpr(s.Cond, held)
		thenOut, thenTerm := lp.walkStmts(s.Body.List, held.clone())
		elseOut, elseTerm := held.clone(), false
		if s.Else != nil {
			elseOut, elseTerm = lp.walkStmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersect(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lp.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lp.checkExpr(s.Cond, held)
		}
		bodyOut, _ := lp.walkStmts(s.Body.List, held.clone())
		if s.Post != nil {
			lp.walkStmt(s.Post, bodyOut)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			// for {} without break never falls through.
			return intersect(held, bodyOut), false
		}
		return intersect(held, bodyOut), false
	case *ast.RangeStmt:
		lp.checkExpr(s.X, held)
		bodyOut, _ := lp.walkStmts(s.Body.List, held.clone())
		return intersect(held, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lp.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lp.checkExpr(s.Tag, held)
		}
		return lp.walkCases(s.Body, held, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lp.walkStmt(s.Init, held)
		}
		return lp.walkCases(s.Body, held, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		return lp.walkCases(s.Body, held, true)
	case *ast.LabeledStmt:
		return lp.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently: its body starts with NO
		// locks held, whatever the spawner holds.
		lp.checkExpr(s.Call.Fun, make(lockState))
		for _, a := range s.Call.Args {
			lp.checkExpr(a, make(lockState))
		}
		return held, false
	case *ast.IncDecStmt:
		lp.checkExpr(s.X, held)
		return held, false
	case *ast.SendStmt:
		lp.checkExpr(s.Chan, held)
		lp.checkExpr(s.Value, held)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lp.checkExpr(v, held)
					}
				}
			}
		}
		return held, false
	default:
		return held, false
	}
}

// walkCases merges switch/select case bodies by intersection;
// exhaustive=false (no default) keeps the entry state in the merge.
func (lp *lockguardPass) walkCases(body *ast.BlockStmt, held lockState, exhaustive bool) (lockState, bool) {
	out := lockState(nil)
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				lp.checkExpr(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				lp.walkStmt(c.Comm, held.clone())
			}
			stmts = c.Body
		}
		caseOut, term := lp.walkStmts(stmts, held.clone())
		if term {
			continue
		}
		allTerm = false
		if out == nil {
			out = caseOut
		} else {
			out = intersect(out, caseOut)
		}
	}
	if !exhaustive || out == nil {
		out2 := held.clone()
		if out != nil {
			out2 = intersect(out2, out)
		}
		return out2, false
	}
	if allTerm && exhaustive {
		return held, true
	}
	return out, false
}

// applyLockCall recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock()
// statements and mutates held; returns true when the expression was a
// lock operation.
func (lp *lockguardPass) applyLockCall(e ast.Expr, held lockState) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := lp.lockMethod(call)
	if !ok {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	key := exprString(sel.X)
	if key == "" {
		return false
	}
	switch name {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// lockMethod reports whether call is a method call named
// Lock/RLock/Unlock/RUnlock on a sync mutex value.
func (lp *lockguardPass) lockMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	fn, ok := lp.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return sel.Sel.Name, true
}

// applyLocksAnnotations handles calls to //memento:locks p.mu
// functions: after the call, the argument's mutex is held.
func (lp *lockguardPass) applyLocksAnnotations(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(lp.pass.Info, call)
		if fn == nil {
			return true
		}
		fa := lp.declAnn[fn.Origin()]
		if fa == nil || len(fa.Locks) == 0 {
			return true
		}
		decl := lp.declFor(fn.Origin())
		if decl == nil {
			return true
		}
		for _, spec := range fa.Locks {
			if idx := paramIndex(decl, spec.Param); idx >= 0 && idx < len(call.Args) {
				if key := exprString(call.Args[idx]); key != "" {
					held[key+"."+spec.Field] = true
				}
			}
		}
		return true
	})
}

// declFor finds the FuncDecl of a same-package function object.
func (lp *lockguardPass) declFor(fn *types.Func) *ast.FuncDecl {
	for decl := range lp.pass.Ann.Funcs {
		if obj, ok := lp.pass.Info.Defs[decl.Name].(*types.Func); ok && obj == fn {
			return decl
		}
	}
	return nil
}

// paramIndex returns the positional index of a named parameter.
func paramIndex(d *ast.FuncDecl, name string) int {
	i := 0
	if d.Type.Params == nil {
		return -1
	}
	for _, f := range d.Type.Params.List {
		for _, id := range f.Names {
			if id.Name == name {
				return i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return -1
}

// checkExpr inspects an expression for guarded-field accesses and
// calls to //memento:locked methods, under the given lock state.
// Closure literals are analyzed with the state at their creation.
func (lp *lockguardPass) checkExpr(e ast.Expr, held lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lp.walkStmts(n.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			lp.checkLockedCall(n, held)
			return true
		case *ast.SelectorExpr:
			lp.checkGuardedAccess(n, held)
			return true
		}
		return true
	})
}

// checkLockedCall verifies that calls to //memento:locked methods are
// made with the receiver's mutex held.
func (lp *lockguardPass) checkLockedCall(call *ast.CallExpr, held lockState) {
	fn := funcObj(lp.pass.Info, call)
	if fn == nil {
		return
	}
	fa := lp.declAnn[fn.Origin()]
	if fa == nil || len(fa.Locked) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := exprString(sel.X)
	for _, mu := range fa.Locked {
		want := base + "." + mu
		if base == "" || !held[want] {
			pos := lp.pass.Fset.Position(call.Pos())
			if lp.pass.Ann.waive("lock", pos) {
				continue
			}
			lp.pass.reportf("lockguard", call.Pos(),
				"call to %s requires holding %s (//memento:locked %s)", fn.Name(), want, mu)
		}
	}
}

// checkGuardedAccess verifies one selector against the guarded-field
// table.
func (lp *lockguardPass) checkGuardedAccess(sel *ast.SelectorExpr, held lockState) {
	v, ok := lp.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	// Origin maps a field of an instantiated generic type back to the
	// declaration-site Var the annotation table is keyed by.
	guard, ok := lp.pass.Ann.Guarded[v.Origin()]
	if !ok {
		return
	}
	base := exprString(sel.X)
	want := base + "." + guard
	if base != "" && held[want] {
		return
	}
	pos := lp.pass.Fset.Position(sel.Sel.Pos())
	if lp.pass.Ann.waive("lock", pos) {
		return
	}
	lp.pass.reportf("lockguard", sel.Sel.Pos(),
		"access to %s (guarded by %s) without holding %s", sel.Sel.Name, guard, want)
}

// exprString renders the base-expression chains lock matching relies
// on; "" means unmatchable (the access will be reported unless the
// exact textual base was locked).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprString(e.X)
		idx := exprString(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprString(e.X)
		}
		return ""
	case *ast.BasicLit:
		return e.Value
	default:
		return ""
	}
}

// hasBreak reports whether a block contains a break statement at its
// own loop level (nested loops' breaks do not count; good enough for
// the for{} fall-through heuristic).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasDefaultCase reports whether a switch body has a default clause.
func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
