// nopanic protects the decode/apply surface: adversarial bytes fed to
// Decode*/Apply* must come back as errors, never as panics. Scope is
// set per function (//memento:nopanic) or per package
// (//memento:nopanic Decode* Apply* in the package doc, matching
// exported names by glob).
//
// Two kinds of checks:
//
//   - Explicit panics propagate: a scoped function may not contain a
//     panic statement, nor call (statically, transitively through the
//     module) a function that does. This is what catches a Decode
//     path reaching a MustNew constructor. Verdicts flow across
//     packages as FuncFact.Panics.
//   - Intrinsic hazards are checked inside scoped functions only:
//     non-comma-ok type assertions, and index/slice expressions whose
//     bounds are not locally proven. The prover is deliberately
//     small: an early-return `if len(data) < K { return ... }`
//     establishes a minimum length for constant indexes (the
//     codec.ReadHeader idiom), `for i := range x` / `for i := 0;
//     i < len(x); i++` justify x[i], and len(x)-derived slice bounds
//     pass. Everything else is a finding — decoders should go
//     through codec.Cursor, whose methods return errors; genuinely
//     safe arithmetic the prover cannot see gets a
//     //memento:allow panic waiver stating why.
//
// Runtime panics inside the standard library are mostly out of
// scope, with one modeled exception: encoding/binary's fixed-width
// accessors (BigEndian.Uint64 and friends) index their argument
// unconditionally, so they demand the same proven minimum length as
// a direct index. The varint readers return n <= 0 on short input
// and are safe.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NoPanic is the decode-safety analyzer.
var NoPanic = &Analyzer{
	Name:     "nopanic",
	Category: "panic",
	Doc: "report panics reachable from //memento:nopanic functions " +
		"(directly, via module calls, or via unproven asserts/indexing)",
	Run: runNoPanic,
}

// panicInfo is the per-function working state.
type panicInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	panics  bool
	why     string
	whyPos  token.Pos
	callees map[*panicInfo][]token.Pos
	// callSites are cross-package or propagated findings to report if
	// the function is scoped.
	callSites []allocSite
}

func runNoPanic(pass *Pass) error {
	if !pass.InModule {
		return nil
	}
	infos := make(map[*types.Func]*panicInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[obj] = &panicInfo{decl: d, obj: obj, callees: make(map[*panicInfo][]token.Pos)}
		}
	}

	// Intrinsic pass: explicit panic sites and cross-package call
	// verdicts.
	for _, pi := range infos {
		collectPanicSites(pass, pi, infos)
	}

	// Same-package fixpoint; each edge is consumed once its callee is
	// known panicking, and fully waived edges do not propagate.
	for changed := true; changed; {
		changed = false
		for _, pi := range infos {
			for callee, sites := range pi.callees {
				if !callee.panics {
					continue
				}
				delete(pi.callees, callee)
				msg := fmt.Sprintf("calls %s, which can panic: %s", callee.obj.Name(), callee.why)
				marked := false
				for _, pos := range sites {
					if pass.Ann.waive("panic", pass.Fset.Position(pos)) {
						continue
					}
					marked = true
					pi.callSites = append(pi.callSites, allocSite{pos: pos, msg: msg})
				}
				if marked && !pi.panics {
					pi.panics = true
					pi.why = msg
					changed = true
				}
			}
		}
	}

	// Facts + diagnostics.
	for _, pi := range infos {
		fact := pass.Facts.Funcs[FuncKey(pi.obj)]
		fact.Analyzed = true
		fact.Panics = pi.panics
		fact.PanicsWhy = pi.why
		pass.Facts.Funcs[FuncKey(pi.obj)] = fact

		if !pass.Ann.NoPanicScope(pi.decl) {
			continue
		}
		if pi.panics && pi.whyPos.IsValid() {
			pass.reportf("nopanic", pi.whyPos, "%s", pi.why)
		}
		for _, site := range pi.callSites {
			pass.reportf("nopanic", site.pos, "%s", site.msg)
		}
		checkIntrinsicHazards(pass, pi.decl)
	}
	return nil
}

// collectPanicSites finds explicit panic statements and call edges.
func collectPanicSites(pass *Pass, pi *panicInfo, infos map[*types.Func]*panicInfo) {
	ast.Inspect(pi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if builtinName(pass.Info, call) == "panic" {
			if pass.Ann.waive("panic", pass.Fset.Position(call.Pos())) {
				return true
			}
			if !pi.panics {
				pi.panics = true
				pi.why = fmt.Sprintf("panics at %s", pass.Fset.Position(call.Pos()))
				pi.whyPos = call.Pos()
			}
			return true
		}
		fn := funcObj(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg() == pass.Pkg {
			if callee, ok := infos[fn.Origin()]; ok {
				pi.callees[callee] = append(pi.callees[callee], call.Pos())
			}
			return true
		}
		if pass.inModulePath(fn.Pkg().Path()) {
			if fact, ok := pass.Facts.Funcs[FuncKey(fn)]; ok && fact.Analyzed && fact.Panics {
				if pass.Ann.waive("panic", pass.Fset.Position(call.Pos())) {
					return true
				}
				why := fmt.Sprintf("calls %s, which can panic: %s", FuncKey(fn), fact.PanicsWhy)
				if !pi.panics {
					pi.panics = true
					pi.why = why
				}
				pi.callSites = append(pi.callSites, allocSite{pos: call.Pos(), msg: why})
			}
		}
		return true
	})
}

// panicEnv tracks locally proven bounds facts.
type panicEnv struct {
	// minLen maps a rendered expression to its proven minimum length.
	minLen map[string]int64
	// loopIdx maps an index variable to the rendered expression it is
	// proven in-bounds for.
	loopIdx map[*types.Var]string
	// okAsserts marks type assertions appearing in comma-ok form.
	okAsserts map[*ast.TypeAssertExpr]bool
}

func (e *panicEnv) clone() *panicEnv {
	c := &panicEnv{
		minLen:    make(map[string]int64, len(e.minLen)),
		loopIdx:   make(map[*types.Var]string, len(e.loopIdx)),
		okAsserts: e.okAsserts, // shared: set once up front
	}
	for k, v := range e.minLen {
		c.minLen[k] = v
	}
	for k, v := range e.loopIdx {
		c.loopIdx[k] = v
	}
	return c
}

// lenFact is one "len(base) >= min" deduction from a condition.
type lenFact struct {
	base string
	min  int64
}

// checkIntrinsicHazards walks one scoped function's body proving or
// reporting asserts and index/slice expressions.
func checkIntrinsicHazards(pass *Pass, d *ast.FuncDecl) {
	env := &panicEnv{
		minLen:    make(map[string]int64),
		loopIdx:   make(map[*types.Var]string),
		okAsserts: make(map[*ast.TypeAssertExpr]bool),
	}
	// Pre-pass: comma-ok assertion forms.
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ta, ok := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); ok {
					env.okAsserts[ta] = true
				}
			}
		case *ast.TypeSwitchStmt:
			// The x.(type) expression inside is not a hazard.
			ast.Inspect(n, func(m ast.Node) bool {
				if ta, ok := m.(*ast.TypeAssertExpr); ok && ta.Type == nil {
					env.okAsserts[ta] = true
				}
				return true
			})
		}
		return true
	})
	walkPanicStmts(pass, d.Body.List, env)
}

// walkPanicStmts interprets a statement list, threading bounds facts.
// Returns true when the list always terminates (return/panic).
func walkPanicStmts(pass *Pass, stmts []ast.Stmt, env *panicEnv) bool {
	for _, st := range stmts {
		if walkPanicStmt(pass, st, env) {
			return true
		}
	}
	return false
}

func walkPanicStmt(pass *Pass, st ast.Stmt, env *panicEnv) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			checkHazardExpr(pass, e, env)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		checkHazardExpr(pass, s.X, env)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && builtinName(pass.Info, call) == "panic" {
			return true
		}
		return false
	case *ast.BlockStmt:
		return walkPanicStmts(pass, s.List, env.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			walkPanicStmt(pass, s.Init, env)
		}
		checkHazardExpr(pass, s.Cond, env)
		thenFacts, elseFacts := condLenFacts(pass, s.Cond)
		thenEnv := env.clone()
		for _, f := range thenFacts {
			if f.min > thenEnv.minLen[f.base] {
				thenEnv.minLen[f.base] = f.min
			}
		}
		thenTerm := walkPanicStmts(pass, s.Body.List, thenEnv)
		elseEnv := env.clone()
		for _, f := range elseFacts {
			if f.min > elseEnv.minLen[f.base] {
				elseEnv.minLen[f.base] = f.min
			}
		}
		elseTerm := false
		if s.Else != nil {
			elseTerm = walkPanicStmt(pass, s.Else, elseEnv)
		}
		if thenTerm && !elseTerm {
			// Early return: the else-facts hold from here on.
			for _, f := range elseFacts {
				if f.min > env.minLen[f.base] {
					env.minLen[f.base] = f.min
				}
			}
		}
		return thenTerm && elseTerm
	case *ast.ForStmt:
		loopEnv := env.clone()
		if s.Init != nil {
			walkPanicStmt(pass, s.Init, loopEnv)
		}
		if v, base, ok := boundedLoopVar(pass, s); ok {
			loopEnv.loopIdx[v] = base
		}
		if s.Cond != nil {
			checkHazardExpr(pass, s.Cond, loopEnv)
		}
		walkPanicStmts(pass, s.Body.List, loopEnv)
		if s.Post != nil {
			walkPanicStmt(pass, s.Post, loopEnv)
		}
		return false
	case *ast.RangeStmt:
		checkHazardExpr(pass, s.X, env)
		loopEnv := env.clone()
		if key, ok := s.Key.(*ast.Ident); ok && key.Name != "_" {
			if v, ok := pass.Info.Defs[key].(*types.Var); ok {
				if base := exprString(s.X); base != "" && indexableType(pass.Info.TypeOf(s.X)) {
					loopEnv.loopIdx[v] = base
				}
			}
		}
		walkPanicStmts(pass, s.Body.List, loopEnv)
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkHazardExpr(pass, e, env)
		}
		for _, e := range s.Lhs {
			checkHazardExpr(pass, e, env)
		}
		// Any assignment to a tracked base invalidates its facts.
		for _, e := range s.Lhs {
			if base := exprString(e); base != "" {
				delete(env.minLen, base)
			}
		}
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkPanicStmt(pass, s.Init, env)
		}
		if s.Tag != nil {
			checkHazardExpr(pass, s.Tag, env)
		}
		return walkPanicCases(pass, s.Body, env)
	case *ast.TypeSwitchStmt:
		return walkPanicCases(pass, s.Body, env)
	case *ast.SelectStmt:
		return walkPanicCases(pass, s.Body, env)
	case *ast.LabeledStmt:
		return walkPanicStmt(pass, s.Stmt, env)
	case *ast.DeferStmt:
		checkHazardExpr(pass, s.Call, env)
		return false
	case *ast.GoStmt:
		checkHazardExpr(pass, s.Call, env)
		return false
	case *ast.IncDecStmt:
		checkHazardExpr(pass, s.X, env)
		return false
	case *ast.SendStmt:
		checkHazardExpr(pass, s.Chan, env)
		checkHazardExpr(pass, s.Value, env)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						checkHazardExpr(pass, v, env)
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

func walkPanicCases(pass *Pass, body *ast.BlockStmt, env *panicEnv) bool {
	allTerm := true
	sawDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				checkHazardExpr(pass, e, env)
			}
			if c.List == nil {
				sawDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				walkPanicStmt(pass, c.Comm, env.clone())
			}
			stmts = c.Body
		}
		if !walkPanicStmts(pass, stmts, env.clone()) {
			allTerm = false
		}
	}
	return allTerm && sawDefault
}

// checkHazardExpr inspects one expression for assertion and
// index/slice hazards under the current facts.
func checkHazardExpr(pass *Pass, e ast.Expr, env *panicEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are separate functions; out of scope
		case *ast.TypeAssertExpr:
			if n.Type != nil && !env.okAsserts[n] {
				if !pass.Ann.waive("panic", pass.Fset.Position(n.Pos())) {
					pass.reportf("nopanic", n.Pos(), "type assertion without comma-ok can panic")
				}
			}
		case *ast.IndexExpr:
			checkIndexHazard(pass, n, env)
		case *ast.SliceExpr:
			checkSliceHazard(pass, n, env)
		case *ast.CallExpr:
			checkBinaryWidthHazard(pass, n, env)
		}
		return true
	})
}

// checkBinaryWidthHazard treats encoding/binary's fixed-width
// accessors (BigEndian.Uint64 and friends) as the bounds hazards they
// are: they index b[width-1] unconditionally, so the argument needs a
// proven minimum length just like a direct index would.
func checkBinaryWidthHazard(pass *Pass, call *ast.CallExpr, env *panicEnv) {
	fn := funcObj(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" || len(call.Args) == 0 {
		return
	}
	var width int64
	switch fn.Name() {
	case "Uint16", "PutUint16":
		width = 2
	case "Uint32", "PutUint32":
		width = 4
	case "Uint64", "PutUint64":
		width = 8
	default:
		return
	}
	arg := ast.Unparen(call.Args[0])
	// b[lo:] and b[lo:hi] offset the requirement by the low bound.
	var need = width
	base := exprString(arg)
	if sl, ok := arg.(*ast.SliceExpr); ok {
		if hi, ok := intValue(pass.Info, sl.High); ok {
			var lo int64
			if sl.Low != nil {
				lo, _ = intValue(pass.Info, sl.Low)
			}
			if hi-lo >= width { // wide enough — the slice op itself was checked above
				return
			}
		}
		if lo, ok := intValue(pass.Info, sl.Low); ok && sl.High == nil {
			base = exprString(sl.X)
			need = lo + width
		}
	}
	if base != "" && env.minLen[base] >= need {
		return
	}
	if pass.Ann.waive("panic", pass.Fset.Position(call.Pos())) {
		return
	}
	pass.reportf("nopanic", call.Pos(),
		"binary.%s needs %d readable bytes; guard with an explicit len check first", fn.Name(), need)
}

// checkIndexHazard proves or reports x[i].
func checkIndexHazard(pass *Pass, idx *ast.IndexExpr, env *panicEnv) {
	t := pass.Info.TypeOf(idx.X)
	if t == nil || !indexableType(t) {
		return // maps never panic on read; generic instantiations skip
	}
	if _, isArray := arrayType(t); isArray {
		if _, ok := intValue(pass.Info, idx.Index); ok {
			return // constant index into array: compiler-checked
		}
	}
	base := exprString(idx.X)
	if c, ok := intValue(pass.Info, idx.Index); ok {
		if base != "" && env.minLen[base] > c {
			return
		}
	} else if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && base != "" && env.loopIdx[v] == base {
			return
		}
	}
	if pass.Ann.waive("panic", pass.Fset.Position(idx.Pos())) {
		return
	}
	pass.reportf("nopanic", idx.Pos(),
		"index %s not proven in bounds (guard with an explicit len check or use codec.Cursor)", renderHazard(base, idx.Index))
}

// checkSliceHazard proves or reports x[lo:hi].
func checkSliceHazard(pass *Pass, sl *ast.SliceExpr, env *panicEnv) {
	t := pass.Info.TypeOf(sl.X)
	if t == nil || !indexableType(t) {
		return
	}
	base := exprString(sl.X)
	boundOK := func(b ast.Expr) bool {
		if b == nil {
			return true
		}
		if c, ok := intValue(pass.Info, b); ok {
			return base != "" && env.minLen[base] >= c
		}
		// len(base) and len(base)-k bounds are safe by construction.
		if isLenOf(pass, b, base) {
			return true
		}
		if be, ok := ast.Unparen(b).(*ast.BinaryExpr); ok && be.Op == token.SUB {
			if isLenOf(pass, be.X, base) {
				if _, ok := intValue(pass.Info, be.Y); ok {
					return true
				}
			}
		}
		if id, ok := ast.Unparen(b).(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && base != "" && env.loopIdx[v] == base {
				return true
			}
		}
		return false
	}
	for _, b := range []ast.Expr{sl.Low, sl.High, sl.Max} {
		if !boundOK(b) {
			if pass.Ann.waive("panic", pass.Fset.Position(sl.Pos())) {
				return
			}
			pass.reportf("nopanic", sl.Pos(),
				"slice bound %s not proven in range (guard with an explicit len check or use codec.Cursor)", renderHazard(base, b))
			return
		}
	}
}

// isLenOf reports whether e is len(<base>).
func isLenOf(pass *Pass, e ast.Expr, base string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || builtinName(pass.Info, call) != "len" || len(call.Args) != 1 {
		return false
	}
	return base != "" && exprString(call.Args[0]) == base
}

// condLenFacts extracts len() deductions from a condition: facts
// proven inside the then branch, and inside the else branch.
func condLenFacts(pass *Pass, cond ast.Expr) (thenFacts, elseFacts []lenFact) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			t1, _ := condLenFacts(pass, c.X)
			t2, _ := condLenFacts(pass, c.Y)
			return append(t1, t2...), nil
		case token.LOR:
			_, e1 := condLenFacts(pass, c.X)
			_, e2 := condLenFacts(pass, c.Y)
			return nil, append(e1, e2...)
		}
		// len(x) OP k  or  k OP len(x)
		lenSide, constSide, flipped := c.X, c.Y, false
		base := lenArgBase(pass, lenSide)
		if base == "" {
			lenSide, constSide, flipped = c.Y, c.X, true
			base = lenArgBase(pass, lenSide)
		}
		if base == "" {
			return nil, nil
		}
		k, ok := intValue(pass.Info, constSide)
		if !ok {
			return nil, nil
		}
		op := c.Op
		if flipped {
			op = flipCmp(op)
		}
		// Normalized: len(base) OP k.
		switch op {
		case token.GEQ: // len >= k
			return []lenFact{{base, k}}, nil
		case token.GTR: // len > k
			return []lenFact{{base, k + 1}}, nil
		case token.EQL: // len == k
			return []lenFact{{base, k}}, nil
		case token.LSS: // len < k → else: len >= k
			return nil, []lenFact{{base, k}}
		case token.LEQ: // len <= k → else: len > k
			return nil, []lenFact{{base, k + 1}}
		case token.NEQ: // len != k → else: len == k
			return nil, []lenFact{{base, k}}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			t, e := condLenFacts(pass, c.X)
			return e, t
		}
	}
	return nil, nil
}

// lenArgBase returns the rendered argument of a len() call, or "".
func lenArgBase(pass *Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || builtinName(pass.Info, call) != "len" || len(call.Args) != 1 {
		return ""
	}
	return exprString(call.Args[0])
}

// flipCmp mirrors a comparison operator for `k OP len(x)` forms.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// boundedLoopVar recognizes `for i := C; i < len(x); i++`.
func boundedLoopVar(pass *Pass, s *ast.ForStmt) (*types.Var, string, bool) {
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return nil, "", false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, ok := pass.Info.Defs[id].(*types.Var)
	if !ok {
		return nil, "", false
	}
	if c, ok := intValue(pass.Info, init.Rhs[0]); !ok || c < 0 {
		return nil, "", false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return nil, "", false
	}
	if cid, ok := ast.Unparen(cond.X).(*ast.Ident); !ok || pass.Info.Uses[cid] != v {
		return nil, "", false
	}
	base := lenArgBase(pass, cond.Y)
	if base == "" {
		return nil, "", false
	}
	return v, base, true
}

// intValue evaluates a constant integer expression.
func intValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// indexableType reports slice/array/string operands (the panicking
// index classes).
func indexableType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// arrayType unwraps array and *array operands.
func arrayType(t types.Type) (*types.Array, bool) {
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u, true
	case *types.Pointer:
		a, ok := u.Elem().Underlying().(*types.Array)
		return a, ok
	}
	return nil, false
}

// renderHazard pretty-prints a hazard site for diagnostics.
func renderHazard(base string, bound ast.Expr) string {
	if base == "" {
		base = "<expr>"
	}
	return fmt.Sprintf("on %s", base)
}
