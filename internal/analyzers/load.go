// load.go is the standalone driver's package loader. It shells out to
// `go list -export -deps -json`, which works fully offline (export
// data comes from the build cache), parses the module's own packages
// from source with comments (annotations live in comments), and
// imports everything else from compiled export data — the same split
// the analyzers make between "analyzed" and "opaque" code.

package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Unit is one loaded, type-checked module package ready for
// analysis, in dependency order.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir and returns the module's packages in
// dependency order, plus the module path.
func Load(dir string, patterns []string) ([]*Unit, string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list: %w", err)
	}

	// -deps emits dependencies before dependents, which is exactly the
	// fact-flow order the analyzers need.
	var ordered []*listedPackage
	byPath := make(map[string]*listedPackage)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("go list output: %w", err)
		}
		ordered = append(ordered, p)
		byPath[p.ImportPath] = p
	}

	modulePath, err := currentModule(dir)
	if err != nil {
		return nil, "", err
	}

	fset := token.NewFileSet()
	exportLookup := func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup)

	var units []*Unit
	for _, p := range ordered {
		if p.Error != nil {
			return nil, "", fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module == nil || p.Module.Path != modulePath || p.Standard {
			continue
		}
		unit, err := parseAndCheck(fset, p, imp)
		if err != nil {
			return nil, "", err
		}
		units = append(units, unit)
	}
	return units, modulePath, nil
}

// currentModule reads the module path of dir.
func currentModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// parseAndCheck loads one module package from source.
func parseAndCheck(fset *token.FileSet, p *listedPackage, imp types.Importer) (*Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Unit{ImportPath: p.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
