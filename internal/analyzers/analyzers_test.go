// The analyzer suite is tested the way go/analysis suites are: a
// miniature module under testdata/src (module vettest, loaded through
// the same Load pipeline the standalone driver uses) carries one
// source file per analyzer, with expectations written next to the
// code they describe:
//
//	s.n = v // want `access to n \(guarded by mu\)`
//
// A want comment holds one or more regexps (backquoted or quoted) and
// applies to its own line; "want+N" shifts the expectation N lines
// down, for diagnostics positioned on a directive comment itself
// (unused waivers, malformed annotations). Every diagnostic must
// match an expectation and every expectation must be hit — unexpected
// findings and missed findings both fail.
//
// TestRepoClean then turns the suite on this repository itself: the
// whole module must analyze clean, so deleting a mu.Lock() in
// internal/shard or adding an allocation to a //memento:noalloc hot
// path fails the test suite before it ever reaches CI.
package analyzers_test

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"memento/internal/analyzers"
)

// wantToken matches one expectation regexp, backquoted or quoted.
var wantToken = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	hit  bool
}

// collectWants extracts // want expectations from a unit's comments.
func collectWants(t *testing.T, u *analyzers.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "// want") {
					continue
				}
				rest := strings.TrimPrefix(text, "// want")
				offset := 0
				if strings.HasPrefix(rest, "+") {
					end := 1
					for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
						end++
					}
					n, err := strconv.Atoi(rest[1:end])
					if err != nil {
						t.Fatalf("%s: bad want offset in %q", u.Fset.Position(c.Pos()), text)
					}
					offset = n
					rest = rest[end:]
				}
				pos := u.Fset.Position(c.Pos())
				toks := wantToken.FindAllStringSubmatch(rest, -1)
				if len(toks) == 0 {
					t.Fatalf("%s: want comment %q has no pattern", pos, text)
				}
				for _, m := range toks {
					src := m[1]
					if src == "" {
						src = m[2]
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, src, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line + offset,
						re:   re,
						src:  src,
					})
				}
			}
		}
	}
	return wants
}

// TestAnalyzers runs the full suite over the vettest module and
// checks every diagnostic against the // want expectations.
func TestAnalyzers(t *testing.T) {
	units, modPath, err := analyzers.Load("testdata/src", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "vettest" {
		t.Fatalf("module = %q, want vettest", modPath)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded from testdata/src")
	}
	// One store threads the dependency-ordered units, exactly like
	// the standalone driver: noallocdep's facts must be in place
	// before noallocuse analyzes.
	store := analyzers.NewFactStore()
	for _, u := range units {
		t.Run(strings.TrimPrefix(u.ImportPath, "vettest/"), func(t *testing.T) {
			res, err := analyzers.AnalyzePackage(u.Fset, u.Files, u.Pkg, u.Info, modPath, store, analyzers.All())
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, u)
			for _, d := range res.Diagnostics {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %v", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.src)
				}
			}
			for _, w := range res.Waivers {
				if strings.TrimSpace(w.Reason) == "" {
					t.Errorf("%s: waiver with empty reason", w.Pos)
				}
			}
		})
	}
}

// TestRepoClean analyzes this repository with its own suite and
// requires a clean bill: zero diagnostics (which covers annotation
// parsing — a typo'd //memento: marker is an "annot" finding) and a
// justified reason on every waiver in effect.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	units, modPath, err := analyzers.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "memento" {
		t.Fatalf("module = %q, want memento", modPath)
	}
	store := analyzers.NewFactStore()
	waivers := 0
	for _, u := range units {
		res, err := analyzers.AnalyzePackage(u.Fset, u.Files, u.Pkg, u.Info, modPath, store, analyzers.All())
		if err != nil {
			t.Fatalf("%s: %v", u.ImportPath, err)
		}
		for _, d := range res.Diagnostics {
			t.Errorf("%v", d)
		}
		for _, w := range res.Waivers {
			waivers++
			if strings.TrimSpace(w.Reason) == "" {
				t.Errorf("%s: waiver with empty reason", w.Pos)
			}
		}
	}
	if waivers == 0 {
		t.Error("expected //memento:allow waivers in the tree; annotation parsing is likely broken")
	}
	t.Logf("%d packages analyzed, %d waivers in effect", len(units), waivers)
}
