// unitchecker.go speaks `go vet -vettool`'s compilation-unit
// protocol, reimplemented from scratch against the standard library
// (the x/tools unitchecker is the reference for the wire format, but
// this module takes no dependencies):
//
//	mementovet <file>.cfg
//
// The cfg is a JSON description of one package: its files, how to
// resolve its imports (compiled export data via PackageFile /
// ImportMap), where dependencies' fact files live (PackageVetx), and
// where to write this package's facts (VetxOutput). Facts re-export
// transitively — the output store is the merge of all dependency
// stores plus this package's own — so go vet only ever wires direct
// dependencies. Diagnostics go to stderr as file:line:col lines and
// the exit status is nonzero iff there are findings, which is all
// `go vet` needs to fail the build.

package analyzers

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// VetConfig mirrors the JSON unit description `go vet` hands to a
// vettool (cmd/go's internal work.vetConfig).
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	ModulePath    string
	ModuleVersion string

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes one unit-checker invocation. It returns the
// diagnostics (already printed to w) and the exit code.
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "mementovet: bad config %s: %v\n", cfgPath, err)
		return 1
	}

	// Merge dependency facts; they re-export below whatever happens.
	store := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		dep, err := readFacts(vetx)
		if err != nil {
			fmt.Fprintf(w, "mementovet: reading facts %s: %v\n", vetx, err)
			return 1
		}
		store.Merge(dep)
	}

	// Out-of-module units (stdlib, other modules) carry no memento
	// annotations: pass dependency facts through and move on. The
	// module check mirrors Pass.InModule.
	inModule := cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath] &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
	if !inModule || len(cfg.GoFiles) == 0 {
		if err := writeFacts(cfg.VetxOutput, store); err != nil {
			fmt.Fprintln(w, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts(cfg.VetxOutput, store)
				return 0
			}
			fmt.Fprintln(w, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(cfg.VetxOutput, store)
			return 0
		}
		fmt.Fprintln(w, err)
		return 1
	}

	res, err := AnalyzePackage(fset, files, pkg, info, cfg.ModulePath, store, analyzers)
	if err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	if err := writeFacts(cfg.VetxOutput, store); err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	if cfg.VetxOnly || len(res.Diagnostics) == 0 {
		return 0
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

// vetxPayload is the serialized fact-store shape; gob keeps it
// dependency-free and versioning is by CI rebuild (vetx files live in
// the build cache, never in the repo).
type vetxPayload struct {
	Funcs  map[string]FuncFact
	Fields map[string]FieldFact
}

func readFacts(path string) (*FactStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var payload vetxPayload
	if err := gob.NewDecoder(f).Decode(&payload); err != nil {
		if err == io.EOF { // empty vetx: no facts
			return NewFactStore(), nil
		}
		return nil, err
	}
	store := NewFactStore()
	if payload.Funcs != nil {
		store.Funcs = payload.Funcs
	}
	if payload.Fields != nil {
		store.Fields = payload.Fields
	}
	return store, nil
}

func writeFacts(path string, store *FactStore) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(vetxPayload{Funcs: store.Funcs, Fields: store.Fields}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
