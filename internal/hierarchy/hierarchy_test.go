package hierarchy

import (
	"testing"
	"testing/quick"
)

func TestMaskBytes(t *testing.T) {
	addr := IPv4(181, 7, 20, 6)
	cases := []struct {
		keep uint8
		want uint32
	}{
		{0, 0},
		{1, IPv4(181, 0, 0, 0)},
		{2, IPv4(181, 7, 0, 0)},
		{3, IPv4(181, 7, 20, 0)},
		{4, addr},
		{9, addr}, // over-long keeps everything
	}
	for _, c := range cases {
		if got := MaskBytes(addr, c.keep); got != c.want {
			t.Errorf("MaskBytes(addr, %d) = %08x, want %08x", c.keep, got, c.want)
		}
	}
}

func TestGeneralizesPaperExamples(t *testing.T) {
	// "181.7.20.∗ and 181.7.∗ generalize the (fully specified)
	// 181.7.20.6" (Section 4.2).
	full := Prefix{Src: IPv4(181, 7, 20, 6), SrcLen: 4}
	p24 := Prefix{Src: IPv4(181, 7, 20, 0), SrcLen: 3}
	p16 := Prefix{Src: IPv4(181, 7, 0, 0), SrcLen: 2}
	other := Prefix{Src: IPv4(182, 0, 0, 0), SrcLen: 1}

	if !p24.Generalizes(full) || !p16.Generalizes(full) {
		t.Fatal("ancestors must generalize the full prefix")
	}
	if !p16.Generalizes(p24) {
		t.Fatal("181.7.* must generalize 181.7.20.*")
	}
	if p24.Generalizes(p16) {
		t.Fatal("more specific prefix cannot generalize its parent")
	}
	if other.Generalizes(full) {
		t.Fatal("disjoint prefix cannot generalize")
	}
	if !full.Generalizes(full) {
		t.Fatal("generalization must be reflexive")
	}
	if full.StrictlyGeneralizes(full) {
		t.Fatal("strict generalization must be irreflexive")
	}
}

func TestGeneralizesPartialOrder(t *testing.T) {
	// Antisymmetry and transitivity over random canonical prefixes.
	gen := func(seed uint32, slen, dlen uint8) Prefix {
		sl, dl := slen%5, dlen%5
		return Prefix{
			Src:    MaskBytes(seed*2654435761, sl),
			Dst:    MaskBytes(seed*40503+12345, dl),
			SrcLen: sl,
			DstLen: dl,
		}
	}
	f := func(s1, s2, s3 uint32, l1, l2, l3 uint8) bool {
		a, b, c := gen(s1, l1, l1>>4), gen(s2, l2, l2>>4), gen(s3, l3, l3>>4)
		// Antisymmetry.
		if a.Generalizes(b) && b.Generalizes(a) && a != b {
			return false
		}
		// Transitivity.
		if a.Generalizes(b) && b.Generalizes(c) && !a.Generalizes(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGLB(t *testing.T) {
	// From Definition 4.3: glb is the unique most-general common
	// descendant.
	a := Prefix{Src: IPv4(142, 14, 0, 0), SrcLen: 2, Dst: IPv4(10, 0, 0, 0), DstLen: 1}
	b := Prefix{Src: IPv4(142, 0, 0, 0), SrcLen: 1, Dst: IPv4(10, 20, 0, 0), DstLen: 2}
	g, ok := GLB(a, b)
	if !ok {
		t.Fatal("compatible prefixes must have a glb")
	}
	want := Prefix{Src: IPv4(142, 14, 0, 0), SrcLen: 2, Dst: IPv4(10, 20, 0, 0), DstLen: 2}
	if g != want {
		t.Fatalf("glb = %v, want %v", g, want)
	}
	// Incompatible on src: no common descendant.
	c := Prefix{Src: IPv4(143, 99, 0, 0), SrcLen: 2, Dst: IPv4(10, 20, 0, 0), DstLen: 2}
	if _, ok := GLB(a, c); ok {
		t.Fatal("disjoint prefixes must have no glb")
	}
}

func TestGLBProperties(t *testing.T) {
	mk := func(s uint32, sl uint8, d uint32, dl uint8) Prefix {
		sl, dl = sl%5, dl%5
		return Prefix{Src: MaskBytes(s, sl), Dst: MaskBytes(d, dl), SrcLen: sl, DstLen: dl}
	}
	f := func(s1, d1, s2, d2 uint32, sl1, dl1, sl2, dl2 uint8) bool {
		a, b := mk(s1, sl1, d1, dl1), mk(s2, sl2, d2, dl2)
		g, ok := GLB(a, b)
		ga, gb := GLB(b, a)
		if ok != gb || (ok && g != ga) {
			return false // must be commutative
		}
		if !ok {
			return true
		}
		// Both inputs generalize the glb, and the glb is canonical.
		return a.Generalizes(g) && b.Generalizes(g) && g.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGLBIsGreatest(t *testing.T) {
	// Any common descendant must be generalized by the glb.
	a := Prefix{Src: IPv4(142, 14, 0, 0), SrcLen: 2}
	b := Prefix{Src: IPv4(142, 0, 0, 0), SrcLen: 1, Dst: IPv4(9, 0, 0, 0), DstLen: 1}
	g, ok := GLB(a, b)
	if !ok {
		t.Fatal("expected glb")
	}
	common := Prefix{Src: IPv4(142, 14, 3, 0), SrcLen: 3, Dst: IPv4(9, 1, 0, 0), DstLen: 2}
	if !a.Generalizes(common) || !b.Generalizes(common) {
		t.Fatal("test fixture: common must descend from both")
	}
	if !g.Generalizes(common) {
		t.Fatal("glb must generalize every common descendant")
	}
}

func TestClosestPaperExample(t *testing.T) {
	// Section 4.2: p = <142.14.*>, P = {<142.14.13.*>, <142.14.13.14>}
	// → G(p|P) = {<142.14.13.*>}.
	p := Prefix{Src: IPv4(142, 14, 0, 0), SrcLen: 2}
	p3 := Prefix{Src: IPv4(142, 14, 13, 0), SrcLen: 3}
	p4 := Prefix{Src: IPv4(142, 14, 13, 14), SrcLen: 4}
	got := Closest(p, []Prefix{p3, p4}, nil)
	if len(got) != 1 || got[0] != p3 {
		t.Fatalf("G(p|P) = %v, want [%v]", got, p3)
	}
}

func TestClosestFiltersAndExcludesSelf(t *testing.T) {
	p := Prefix{Src: IPv4(10, 0, 0, 0), SrcLen: 1}
	in := []Prefix{
		p, // equal: excluded (strict generalization only)
		{Src: IPv4(10, 1, 0, 0), SrcLen: 2},
		{Src: IPv4(10, 2, 0, 0), SrcLen: 2},
		{Src: IPv4(10, 1, 5, 0), SrcLen: 3}, // shadowed by 10.1.*
		{Src: IPv4(11, 0, 0, 0), SrcLen: 1}, // unrelated
		{Src: IPv4(0, 0, 0, 0), SrcLen: 0},  // ancestor, not descendant
		{Src: IPv4(10, 3, 7, 9), SrcLen: 4}, // maximal descendant
	}
	got := Closest(p, in, nil)
	want := map[Prefix]bool{
		{Src: IPv4(10, 1, 0, 0), SrcLen: 2}: true,
		{Src: IPv4(10, 2, 0, 0), SrcLen: 2}: true,
		{Src: IPv4(10, 3, 7, 9), SrcLen: 4}: true,
	}
	if len(got) != len(want) {
		t.Fatalf("G = %v, want keys %v", got, want)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected member %v", g)
		}
	}
}

func TestClosestReusesBuffer(t *testing.T) {
	p := Prefix{Src: IPv4(10, 0, 0, 0), SrcLen: 1}
	in := []Prefix{{Src: IPv4(10, 1, 0, 0), SrcLen: 2}}
	buf := make([]Prefix, 0, 8)
	got := Closest(p, in, buf)
	if cap(got) != cap(buf) {
		t.Fatal("Closest should reuse the provided buffer")
	}
}

func TestOneDPatterns(t *testing.T) {
	var h OneD
	if h.H() != 5 || h.Levels() != 5 || h.Dims() != 1 {
		t.Fatalf("OneD dimensions wrong: H=%d levels=%d", h.H(), h.Levels())
	}
	pkt := Packet{Src: IPv4(181, 7, 20, 6)}
	if h.Prefix(pkt, 0) != h.Fully(pkt) {
		t.Fatal("pattern 0 must be the fully specified item")
	}
	prevDepth := -1
	for i := 0; i < h.H(); i++ {
		p := h.Prefix(pkt, i)
		if !p.Canonical() {
			t.Fatalf("pattern %d not canonical: %v", i, p)
		}
		d := h.Depth(p)
		if d != i {
			t.Fatalf("1D pattern %d depth %d", i, d)
		}
		if d < prevDepth {
			t.Fatal("patterns must be ordered by non-decreasing depth")
		}
		prevDepth = d
		if !p.Generalizes(h.Fully(pkt)) {
			t.Fatalf("pattern %d must generalize the full item", i)
		}
	}
	if h.Depth(h.Root()) != h.Levels()-1 {
		t.Fatal("root depth mismatch")
	}
}

func TestTwoDPatterns(t *testing.T) {
	var h TwoD
	if h.H() != 25 || h.Levels() != 9 || h.Dims() != 2 {
		t.Fatalf("TwoD dimensions wrong: H=%d levels=%d", h.H(), h.Levels())
	}
	pkt := Packet{Src: IPv4(181, 7, 20, 6), Dst: IPv4(208, 67, 222, 222)}
	seen := make(map[Prefix]bool)
	prevDepth := -1
	for i := 0; i < h.H(); i++ {
		p := h.Prefix(pkt, i)
		if seen[p] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p] = true
		if !p.Canonical() {
			t.Fatalf("pattern %d not canonical", i)
		}
		d := h.Depth(p)
		if d < prevDepth {
			t.Fatalf("pattern %d depth %d < previous %d", i, d, prevDepth)
		}
		prevDepth = d
		if !p.Generalizes(h.Fully(pkt)) {
			t.Fatalf("pattern %d must generalize the full item", i)
		}
	}
	if h.Prefix(pkt, 0) != h.Fully(pkt) {
		t.Fatal("pattern 0 must be fully specified")
	}
	if h.Depth(h.Root()) != 8 {
		t.Fatal("2D root depth must be 8")
	}
	// Every (srcLen, dstLen) combination appears exactly once.
	var lens [5][5]bool
	for p := range seen {
		lens[p.SrcLen][p.DstLen] = true
	}
	for s := 0; s <= 4; s++ {
		for d := 0; d <= 4; d++ {
			if !lens[s][d] {
				t.Fatalf("missing pattern (%d, %d)", s, d)
			}
		}
	}
}

func TestTwoDParentsExample(t *testing.T) {
	// Section 4.2: a fully specified 2D item has two parents.
	var h TwoD
	pkt := Packet{Src: IPv4(181, 7, 20, 6), Dst: IPv4(208, 67, 222, 222)}
	full := h.Fully(pkt)
	parentA := Prefix{Src: MaskBytes(pkt.Src, 3), SrcLen: 3, Dst: pkt.Dst, DstLen: 4}
	parentB := Prefix{Src: pkt.Src, SrcLen: 4, Dst: MaskBytes(pkt.Dst, 3), DstLen: 3}
	for _, p := range []Prefix{parentA, parentB} {
		if !p.StrictlyGeneralizes(full) || h.Depth(p) != 1 {
			t.Fatalf("%v should be a depth-1 parent of %v", p, full)
		}
	}
}

func TestFormat(t *testing.T) {
	p := Prefix{Src: IPv4(181, 7, 0, 0), SrcLen: 2}
	if got := p.String(); got != "181.7.*.*" {
		t.Fatalf("String() = %q", got)
	}
	p2 := Prefix{Src: IPv4(181, 7, 20, 6), SrcLen: 4, Dst: IPv4(208, 0, 0, 0), DstLen: 1}
	if got := p2.String(); got != "(181.7.20.6, 208.*.*.*)" {
		t.Fatalf("String() = %q", got)
	}
	root := Prefix{}
	if got := root.String(); got != "*.*.*.*" {
		t.Fatalf("root String() = %q", got)
	}
}

func TestIPv4(t *testing.T) {
	if IPv4(1, 2, 3, 4) != 0x01020304 {
		t.Fatal("IPv4 packing wrong")
	}
}
