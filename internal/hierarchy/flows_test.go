package hierarchy

import "testing"

func TestFlowsDegenerateHierarchy(t *testing.T) {
	var h Flows
	if h.Dims() != 1 || h.H() != 1 || h.Levels() != 1 {
		t.Fatalf("Flows dims/H/levels = %d/%d/%d", h.Dims(), h.H(), h.Levels())
	}
	pkt := Packet{Src: IPv4(1, 2, 3, 4), Dst: IPv4(5, 6, 7, 8)}
	p := h.Prefix(pkt, 0)
	if p != h.Fully(pkt) {
		t.Fatal("the single pattern must be the fully specified source")
	}
	if p.SrcLen != AddrBytes || p.Src != pkt.Src || p.Dst != 0 {
		t.Fatalf("Flows prefix = %+v", p)
	}
	if h.Depth(p) != 0 || h.PatternIndex(p) != 0 {
		t.Fatalf("depth/index = %d/%d", h.Depth(p), h.PatternIndex(p))
	}
	// Prefixes from other hierarchies are rejected.
	foreign := Prefix{Src: IPv4(1, 0, 0, 0), SrcLen: 1}
	if h.PatternIndex(foreign) != -1 || h.Depth(foreign) != -1 {
		t.Fatal("aggregated prefixes must not belong to Flows")
	}
	twoD := Prefix{Src: pkt.Src, SrcLen: 4, Dst: pkt.Dst, DstLen: 4}
	if h.PatternIndex(twoD) != -1 {
		t.Fatal("2D prefixes must not belong to Flows")
	}
	if h.Root().SrcLen != AddrBytes {
		t.Fatal("Flows root must be at full specification")
	}
	if h.String() == "" {
		t.Fatal("empty name")
	}
}

func TestPatternIndexRoundTrip(t *testing.T) {
	pkt := Packet{Src: IPv4(9, 9, 9, 9), Dst: IPv4(8, 8, 8, 8)}
	for _, h := range []Hierarchy{OneD{}, TwoD{}, Flows{}} {
		for i := 0; i < h.H(); i++ {
			p := h.Prefix(pkt, i)
			if got := h.PatternIndex(p); got != i {
				t.Fatalf("%s: PatternIndex(Prefix(pkt, %d)) = %d", h, i, got)
			}
		}
	}
	// Out-of-domain prefixes.
	if (OneD{}).PatternIndex(Prefix{Dst: 1, DstLen: 1}) != -1 {
		t.Fatal("1D must reject dst-bearing prefixes")
	}
	if (OneD{}).PatternIndex(Prefix{SrcLen: 9}) != -1 {
		t.Fatal("over-long prefix must be rejected")
	}
	if (TwoD{}).PatternIndex(Prefix{SrcLen: 9}) != -1 {
		t.Fatal("2D over-long prefix must be rejected")
	}
}
