// Package hierarchy models the IP prefix hierarchies over which
// Hierarchical Heavy Hitters are defined (paper Section 4.2).
//
// Prefixes are byte-granularity, as in the paper's evaluation: a source
// hierarchy has H = 5 prefix patterns (/32, /24, /16, /8, /0) and a
// two-dimensional source×destination hierarchy has H = 25 patterns and
// 9 depth levels (L = 9). The package provides the generalization
// partial order (Definition 4.1), greatest lower bounds (Definition
// 4.3), and the G(q|P) "closest descendants" operator used by the HHH
// output computation (Algorithms 2–4).
package hierarchy

import (
	"fmt"
	"strings"

	"memento/internal/keyidx"
)

// AddrBytes is the number of bytes in an IPv4 address; prefix lengths
// range over 0..AddrBytes kept bytes.
const AddrBytes = 4

// Packet is a fully specified item: a source address and, for
// two-dimensional hierarchies, a destination address.
type Packet struct {
	Src uint32
	Dst uint32
}

// Prefix identifies a byte-granularity prefix (or prefix tuple).
// SrcLen and DstLen count *kept* leading bytes (0..4); masked-out bytes
// of Src/Dst are zero. A one-dimensional prefix has DstLen == 0 and
// Dst == 0, and is distinguished from a 2D fully-wildcarded destination
// only by which Hierarchy produced it (the two never mix in one sketch).
//
// Prefix is comparable and is used directly as a sketch key.
type Prefix struct {
	Src    uint32
	Dst    uint32
	SrcLen uint8
	DstLen uint8
}

// PrefixHasher returns a fast seeded hash over Prefix values for the
// flat key indexes (internal/keyidx) that replace Go maps on the hot
// paths. A Prefix packs into a word and a half, so two SplitMix
// finalizer rounds beat the generic maphash path by several
// nanoseconds per lookup — which matters ×H for the MST/RHHH
// baselines and for every H-Memento Full update. The seed only
// perturbs table layout; equal prefixes always hash equal.
func PrefixHasher(seed uint64) func(Prefix) uint64 {
	return func(p Prefix) uint64 {
		k1 := uint64(p.Src)<<32 | uint64(p.Dst)
		k2 := uint64(p.SrcLen)<<8 | uint64(p.DstLen)
		return keyidx.Mix64(k1 ^ keyidx.Mix64(k2^seed))
	}
}

// MaskBytes returns addr with only the leading n bytes kept.
func MaskBytes(addr uint32, n uint8) uint32 {
	switch {
	case n == 0:
		return 0
	case n >= AddrBytes:
		return addr
	default:
		shift := uint(8 * (AddrBytes - n))
		return addr >> shift << shift
	}
}

// Canonical reports whether p's address bits are consistent with its
// lengths (no bits set beyond the kept bytes).
func (p Prefix) Canonical() bool {
	return MaskBytes(p.Src, p.SrcLen) == p.Src && MaskBytes(p.Dst, p.DstLen) == p.Dst
}

// Generalizes reports whether p ⪯ q in the paper's notation: p is an
// ancestor of (or equal to) q. It requires p to keep no more bytes than
// q in each dimension and to agree with q on the kept bytes.
func (p Prefix) Generalizes(q Prefix) bool {
	if p.SrcLen > q.SrcLen || p.DstLen > q.DstLen {
		return false
	}
	return MaskBytes(q.Src, p.SrcLen) == p.Src && MaskBytes(q.Dst, p.DstLen) == p.Dst
}

// StrictlyGeneralizes reports p ≺ q: p generalizes q and p ≠ q.
func (p Prefix) StrictlyGeneralizes(q Prefix) bool {
	return p != q && p.Generalizes(q)
}

// Depth returns the generalization depth of p: fully specified prefixes
// have depth 0 and each wildcarded byte adds one (Section 4.2). The
// result is relative to the hierarchy's full specification, so a 1D
// prefix must be interpreted by a 1D hierarchy.
func (p Prefix) depth(dims int) int {
	d := int(AddrBytes - p.SrcLen)
	if dims == 2 {
		d += int(AddrBytes - p.DstLen)
	}
	return d
}

// GLB returns the greatest lower bound of a and b (Definition 4.3): the
// unique most-general common descendant. ok is false when a and b have
// no common descendant (their kept bytes disagree on the overlap).
func GLB(a, b Prefix) (Prefix, bool) {
	src, slen, ok := glbDim(a.Src, a.SrcLen, b.Src, b.SrcLen)
	if !ok {
		return Prefix{}, false
	}
	dst, dlen, ok := glbDim(a.Dst, a.DstLen, b.Dst, b.DstLen)
	if !ok {
		return Prefix{}, false
	}
	return Prefix{Src: src, Dst: dst, SrcLen: slen, DstLen: dlen}, true
}

// glbDim computes the per-dimension greatest lower bound.
func glbDim(a uint32, alen uint8, b uint32, blen uint8) (uint32, uint8, bool) {
	if alen < blen {
		a, alen, b, blen = b, blen, a, alen
	}
	// a is now at least as specific; b must agree with a on b's bytes.
	if MaskBytes(a, blen) != b {
		return 0, 0, false
	}
	return a, alen, true
}

// Closest computes G(q|P) (Section 4.2): the subset of P strictly
// generalized by q that is maximal, i.e. h ∈ P with h ≺ q and no
// h' ∈ P with h ≺ h' ≺ q. The result reuses the out slice's backing
// array when possible.
func Closest(q Prefix, P []Prefix, out []Prefix) []Prefix {
	out = out[:0]
	for _, h := range P {
		if !q.StrictlyGeneralizes(h) {
			continue
		}
		out = append(out, h)
	}
	// Filter non-maximal elements: drop h if some other descendant h'
	// of q strictly generalizes h.
	kept := out[:0]
	for i, h := range out {
		maximal := true
		for j, h2 := range out {
			if i == j {
				continue
			}
			if h2.StrictlyGeneralizes(h) {
				maximal = false
				break
			}
		}
		if maximal {
			kept = append(kept, h)
		}
	}
	return kept
}

// Hierarchy enumerates the prefix patterns of a measurement domain.
// Implementations are OneD (source hierarchy, H = 5) and TwoD
// (source×destination, H = 25).
type Hierarchy interface {
	// Dims is 1 for source-only and 2 for source×destination domains.
	Dims() int
	// H returns the number of prefix patterns (the paper's H).
	H() int
	// Levels returns the number of generalization depths (the paper's
	// L+1 loop bound: 5 in 1D, 9 in 2D).
	Levels() int
	// Prefix returns pattern i of p, for i in [0, H()). Pattern 0 is the
	// fully specified item; patterns are ordered by non-decreasing depth.
	Prefix(p Packet, i int) Prefix
	// PatternIndex returns the pattern number (the i that Prefix would
	// have been called with) for pr, or -1 if pr does not belong to
	// this hierarchy.
	PatternIndex(pr Prefix) int
	// Depth returns the generalization depth of pr under this hierarchy.
	Depth(pr Prefix) int
	// Fully returns the fully specified prefix of p.
	Fully(p Packet) Prefix
	// Root returns the fully general prefix (depth Levels()-1).
	Root() Prefix
	// String returns a human-readable name ("src" or "src×dst").
	String() string
}

// OneD is the one-dimensional byte-granularity source hierarchy
// (H = 5). The zero value is ready to use.
type OneD struct{}

// Dims implements Hierarchy.
func (OneD) Dims() int { return 1 }

// H implements Hierarchy.
func (OneD) H() int { return AddrBytes + 1 }

// Levels implements Hierarchy.
func (OneD) Levels() int { return AddrBytes + 1 }

// Prefix implements Hierarchy; pattern i keeps 4-i source bytes.
func (OneD) Prefix(p Packet, i int) Prefix {
	keep := uint8(AddrBytes - i)
	return Prefix{Src: MaskBytes(p.Src, keep), SrcLen: keep}
}

// PatternIndex implements Hierarchy: pattern i keeps 4-i bytes.
func (OneD) PatternIndex(pr Prefix) int {
	if pr.SrcLen > AddrBytes || pr.DstLen != 0 || pr.Dst != 0 {
		return -1
	}
	return AddrBytes - int(pr.SrcLen)
}

// Depth implements Hierarchy.
func (OneD) Depth(pr Prefix) int { return pr.depth(1) }

// Fully implements Hierarchy.
func (OneD) Fully(p Packet) Prefix { return Prefix{Src: p.Src, SrcLen: AddrBytes} }

// Root implements Hierarchy.
func (OneD) Root() Prefix { return Prefix{} }

// String implements Hierarchy.
func (OneD) String() string { return "src" }

// TwoD is the two-dimensional byte-granularity source×destination
// hierarchy (H = 25, 9 levels). The zero value is ready to use.
type TwoD struct{}

// Dims implements Hierarchy.
func (TwoD) Dims() int { return 2 }

// H implements Hierarchy.
func (TwoD) H() int { return (AddrBytes + 1) * (AddrBytes + 1) }

// Levels implements Hierarchy.
func (TwoD) Levels() int { return 2*AddrBytes + 1 }

// twoDPatterns lists (srcKeep, dstKeep) pairs ordered by non-decreasing
// depth so that pattern 0 is fully specified.
var twoDPatterns = func() [25][2]uint8 {
	var pats [25][2]uint8
	idx := 0
	for depth := 0; depth <= 2*AddrBytes; depth++ {
		for ws := 0; ws <= AddrBytes; ws++ { // wildcarded source bytes
			wd := depth - ws
			if wd < 0 || wd > AddrBytes {
				continue
			}
			pats[idx] = [2]uint8{uint8(AddrBytes - ws), uint8(AddrBytes - wd)}
			idx++
		}
	}
	return pats
}()

// twoDIndex inverts twoDPatterns: twoDIndex[srcKeep][dstKeep] is the
// pattern number.
var twoDIndex = func() [5][5]int {
	var idx [5][5]int
	for i, pat := range twoDPatterns {
		idx[pat[0]][pat[1]] = i
	}
	return idx
}()

// Prefix implements Hierarchy.
func (TwoD) Prefix(p Packet, i int) Prefix {
	pat := twoDPatterns[i]
	return Prefix{
		Src:    MaskBytes(p.Src, pat[0]),
		Dst:    MaskBytes(p.Dst, pat[1]),
		SrcLen: pat[0],
		DstLen: pat[1],
	}
}

// PatternIndex implements Hierarchy.
func (TwoD) PatternIndex(pr Prefix) int {
	if pr.SrcLen > AddrBytes || pr.DstLen > AddrBytes {
		return -1
	}
	return twoDIndex[pr.SrcLen][pr.DstLen]
}

// Depth implements Hierarchy.
func (TwoD) Depth(pr Prefix) int { return pr.depth(2) }

// Fully implements Hierarchy.
func (TwoD) Fully(p Packet) Prefix {
	return Prefix{Src: p.Src, Dst: p.Dst, SrcLen: AddrBytes, DstLen: AddrBytes}
}

// Root implements Hierarchy.
func (TwoD) Root() Prefix { return Prefix{} }

// String implements Hierarchy.
func (TwoD) String() string { return "src×dst" }

// Flows is the degenerate hierarchy with H = 1: the only "prefix" of a
// packet is its fully specified source. Under Flows, H-Memento reduces
// to plain Memento and D-H-Memento to D-Memento, which is exactly how
// the paper treats the network-wide HH problem (Theorem 5.5 "applies
// for D-Memento (using H = 1)"). The zero value is ready to use.
type Flows struct{}

// Dims implements Hierarchy.
func (Flows) Dims() int { return 1 }

// H implements Hierarchy.
func (Flows) H() int { return 1 }

// Levels implements Hierarchy.
func (Flows) Levels() int { return 1 }

// Prefix implements Hierarchy; the only pattern is the full source.
func (Flows) Prefix(p Packet, i int) Prefix {
	return Prefix{Src: p.Src, SrcLen: AddrBytes}
}

// PatternIndex implements Hierarchy.
func (Flows) PatternIndex(pr Prefix) int {
	if pr.SrcLen == AddrBytes && pr.DstLen == 0 && pr.Dst == 0 {
		return 0
	}
	return -1
}

// Depth implements Hierarchy: every valid prefix is fully specified.
func (Flows) Depth(pr Prefix) int {
	if pr.SrcLen == AddrBytes && pr.DstLen == 0 && pr.Dst == 0 {
		return 0
	}
	return -1
}

// Fully implements Hierarchy.
func (Flows) Fully(p Packet) Prefix { return Prefix{Src: p.Src, SrcLen: AddrBytes} }

// Root implements Hierarchy; with a single level the root is the fully
// specified pattern itself (there is no aggregation).
func (Flows) Root() Prefix { return Prefix{SrcLen: AddrBytes} }

// String implements Hierarchy.
func (Flows) String() string { return "flows" }

// Same reports whether two hierarchies describe the same prefix
// domain, without relying on interface comparability (a caller's
// Hierarchy may be an uncomparable type). The durable codec and the
// sharded restore paths use it to validate that snapshots and their
// targets agree.
func Same(a, b Hierarchy) bool {
	return a.Dims() == b.Dims() && a.H() == b.H() &&
		a.Levels() == b.Levels() && a.String() == b.String()
}

// FormatAddr renders a masked address with keep kept bytes in the
// paper's wildcard notation, e.g. "181.7.*.*".
func FormatAddr(addr uint32, keep uint8) string {
	var b strings.Builder
	for i := 0; i < AddrBytes; i++ {
		if i > 0 {
			b.WriteByte('.')
		}
		if i < int(keep) {
			fmt.Fprintf(&b, "%d", byte(addr>>uint(8*(AddrBytes-1-i))))
		} else {
			b.WriteByte('*')
		}
	}
	return b.String()
}

// String renders the prefix; 2D prefixes render as a tuple.
func (p Prefix) String() string {
	src := FormatAddr(p.Src, p.SrcLen)
	if p.DstLen == 0 && p.Dst == 0 {
		return src
	}
	return "(" + src + ", " + FormatAddr(p.Dst, p.DstLen) + ")"
}

// IPv4 packs four octets into the uint32 address representation used
// throughout the repository.
func IPv4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
