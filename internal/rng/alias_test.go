package rng

import (
	"math"
	"testing"
)

func TestAliasValidation(t *testing.T) {
	src := New(1)
	if _, err := NewAlias(src, nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewAlias(src, []float64{1, -2}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewAlias(src, []float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	src := New(2)
	weights := []float64{1, 2, 3, 4, 0, 10}
	a, err := NewAlias(src, weights)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Next()]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / trials
		tol := 6*math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > tol {
			t.Errorf("outcome %d: rate %.5f, want %.5f ± %.5f", i, got, want, tol)
		}
	}
	if counts[4] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[4])
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias(New(3), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Next() != 0 {
			t.Fatal("single outcome must always be drawn")
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("ZipfWeights[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	// Skew 0 is uniform.
	for _, v := range ZipfWeights(5, 0) {
		if v != 1 {
			t.Fatal("skew 0 must be uniform")
		}
	}
}

func TestAliasZipfSkew(t *testing.T) {
	// Rank 1 of a Zipf(1.0) over 1000 outcomes holds ≈ 1/H(1000) ≈ 13%.
	a, err := NewAlias(New(4), ZipfWeights(1000, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	top := 0
	for i := 0; i < trials; i++ {
		if a.Next() == 0 {
			top++
		}
	}
	share := float64(top) / trials
	if share < 0.11 || share > 0.16 {
		t.Fatalf("rank-1 share %.4f, want ≈ 0.134", share)
	}
}

func BenchmarkAliasNext(b *testing.B) {
	a, _ := NewAlias(New(1), ZipfWeights(1<<20, 1.0))
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += a.Next()
	}
	_ = sink
}
