package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(4)
	const n = 10
	const trials = 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn bucket %d: %d, want ≈ %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64MatchesBigProduct(t *testing.T) {
	// Property: low 64 bits of the product match wrapping multiplication.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, p := range []float64{0, 0.001, 0.1, 0.5, 0.9, 1} {
		b := NewBernoulli(New(5), p)
		const trials = 500000
		hits := 0
		for i := 0; i < trials; i++ {
			if b.Sample() {
				hits++
			}
		}
		got := float64(hits) / trials
		tol := 5 * math.Sqrt(p*(1-p)/trials)
		if p == 0 && hits != 0 {
			t.Fatalf("p=0 fired %d times", hits)
		}
		if p == 1 && hits != trials {
			t.Fatalf("p=1 fired only %d of %d", hits, trials)
		}
		if math.Abs(got-p) > tol+1e-9 {
			t.Fatalf("Bernoulli(%v) empirical rate %v beyond tolerance %v", p, got, tol)
		}
	}
}

func TestBernoulliClamps(t *testing.T) {
	b := NewBernoulli(New(6), 2)
	if b.P() != 1 {
		t.Fatalf("P clamped to %v, want 1", b.P())
	}
	b.SetP(-3)
	if b.P() != 0 {
		t.Fatalf("P clamped to %v, want 0", b.P())
	}
	for i := 0; i < 100; i++ {
		if b.Sample() {
			t.Fatal("p=0 sampler fired")
		}
	}
}

func TestTableRate(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 1} {
		tab := NewTable(New(7), 1<<14, p)
		const trials = 400000
		hits := 0
		for i := 0; i < trials; i++ {
			if tab.Sample() {
				hits++
			}
		}
		got := float64(hits) / trials
		// The table cycles, so tolerance is on the table's own sample
		// size, not the trial count.
		tol := 6 * math.Sqrt(p*(1-p)/float64(1<<14))
		if math.Abs(got-p) > tol+1e-9 {
			t.Fatalf("Table(%v) empirical rate %v beyond tolerance %v", p, got, tol)
		}
	}
}

func TestTableSizeRounding(t *testing.T) {
	tab := NewTable(New(8), 1000, 0.5)
	if len(tab.vals) != 1024 {
		t.Fatalf("table size %d, want next power of two 1024", len(tab.vals))
	}
	tab = NewTable(New(8), 0, 0.5)
	if len(tab.vals) < 2 {
		t.Fatalf("degenerate table size %d", len(tab.vals))
	}
}

func TestTableNextCycles(t *testing.T) {
	tab := NewTable(New(9), 4, 0.5)
	first := []uint32{tab.Next(), tab.Next(), tab.Next(), tab.Next()}
	second := []uint32{tab.Next(), tab.Next(), tab.Next(), tab.Next()}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("table did not cycle at %d", i)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.01} {
		g := NewGeometric(New(10), p)
		const trials = 200000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(g.Next())
		}
		mean := sum / trials
		want := (1 - p) / p
		sd := math.Sqrt((1-p)/(p*p)) / math.Sqrt(trials)
		if math.Abs(mean-want) > 6*sd+0.01 {
			t.Fatalf("Geometric(%v) mean %v, want ≈ %v", p, mean, want)
		}
	}
}

func TestGeometricEdge(t *testing.T) {
	g := NewGeometric(New(11), 1)
	for i := 0; i < 100; i++ {
		if g.Next() != 0 {
			t.Fatal("p=1 must always return 0 failures")
		}
	}
	g.SetP(0) // clamps to a tiny positive probability, must not panic
	if v := g.Next(); v < 0 {
		t.Fatalf("negative geometric draw %d", v)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Each bit of the output should be set about half the time.
	r := New(12)
	const trials = 50000
	var ones [64]int
	for i := 0; i < trials; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-trials/2) > 6*math.Sqrt(trials)/2 {
			t.Fatalf("bit %d set %d/%d times", b, c, trials)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	s := NewBernoulli(New(1), 0.01)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Sample() {
			n++
		}
	}
	_ = n
}

func BenchmarkTable(b *testing.B) {
	s := NewTable(New(1), 1<<16, 0.01)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Sample() {
			n++
		}
	}
	_ = n
}

func BenchmarkGeometric(b *testing.B) {
	g := NewGeometric(New(1), 0.01)
	n := 0
	for i := 0; i < b.N; i++ {
		n += g.Next()
	}
	_ = n
}
