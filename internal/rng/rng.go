// Package rng provides the fast, deterministic random number machinery
// used on the per-packet hot paths of the Memento algorithms.
//
// Three samplers matter for the paper's evaluation (Section 6.2,
// Figure 7 discussion):
//
//   - A raw xoshiro256** generator (Source) for general use.
//   - A Bernoulli sampler implemented as a single 32-bit compare against
//     a precomputed threshold, optionally fed from a random-number table
//     (the paper notes H-Memento's sampling "is performed using a random
//     number table", which beats geometric sampling at small τ).
//   - A geometric sampler (inversion method) as used by RHHH to skip
//     packets between updates.
//
// All types here are deliberately not safe for concurrent use; each
// sketch owns its own sampler, matching the single-writer design of the
// data structures they drive.
package rng

import "math"

// splitmix64 advances the seed-expansion generator used to initialize
// xoshiro state. It is the standard SplitMix64 step.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo random generator. The zero value is
// not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed. Two Sources
// built from the same seed produce identical streams, which the test
// suite and the reproducible benchmark harness rely on.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the generator to the deterministic state derived from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// A few warm-up rounds so that near-zero seeds decorrelate quickly.
	for i := 0; i < 8; i++ {
		r.Uint64()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
//memento:noalloc
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits (upper half of
// the 64-bit output, which has the best statistical quality).
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1).
//memento:noalloc
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method: unbiased and division-free
// in the common case.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Bernoulli samples independent events with a fixed probability using a
// single 32-bit comparison per trial.
type Bernoulli struct {
	src       *Source
	threshold uint32
	p         float64
}

// NewBernoulli returns a sampler that reports true with probability p.
// p is clamped to [0, 1].
func NewBernoulli(src *Source, p float64) *Bernoulli {
	b := &Bernoulli{src: src}
	b.SetP(p)
	return b
}

// SetP changes the sampling probability.
func (b *Bernoulli) SetP(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	b.p = p
	// threshold semantics: sample ⇔ r < threshold where r is uniform in
	// [0, 2^32). Sample short-circuits on p == 1, so the threshold only
	// needs to be meaningful for p < 1.
	if p < 1 {
		b.threshold = uint32(p * (1 << 32))
	}
}

// P returns the configured probability.
func (b *Bernoulli) P() float64 { return b.p }

// Sample reports whether the event fires this trial.
//memento:noalloc
func (b *Bernoulli) Sample() bool {
	if b.p >= 1 {
		return true
	}
	return b.src.Uint32() < b.threshold
}

// Table is a random-number table sampler: a precomputed ring of uniform
// 32-bit values consumed with a single load + compare per trial. This is
// the mechanism the paper credits for H-Memento outperforming RHHH's
// geometric sampling at moderate sampling ratios.
type Table struct {
	vals      []uint32
	pos       int
	threshold uint32
	p         float64
}

// NewTable builds a table of size entries filled from src. Size must be
// a power of two for the cheap wrap-around mask; it is rounded up if not.
func NewTable(src *Source, size int, p float64) *Table {
	if size < 2 {
		size = 2
	}
	n := 1
	for n < size {
		n <<= 1
	}
	t := &Table{vals: make([]uint32, n)}
	for i := range t.vals {
		t.vals[i] = src.Uint32()
	}
	t.SetP(p)
	return t
}

// SetP changes the sampling probability.
func (t *Table) SetP(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	t.p = p
	if p >= 1 {
		t.threshold = math.MaxUint32
	} else {
		t.threshold = uint32(p * (1 << 32))
	}
}

// P returns the configured probability.
func (t *Table) P() float64 { return t.p }

// Sample reports whether the event fires this trial.
//memento:noalloc
func (t *Table) Sample() bool {
	if t.p >= 1 {
		return true
	}
	v := t.vals[t.pos]
	t.pos = (t.pos + 1) & (len(t.vals) - 1)
	return v < t.threshold
}

// Next returns the next raw 32-bit table value (used by callers that
// fold the uniform draw into a different decision, e.g. picking one of
// V outcomes).
//memento:noalloc
func (t *Table) Next() uint32 {
	v := t.vals[t.pos]
	t.pos = (t.pos + 1) & (len(t.vals) - 1)
	return v
}

// Geometric samples the number of failures before the first success of
// a Bernoulli(p) process, via inversion: floor(ln U / ln(1-p)). This is
// the sampler RHHH uses to decide how many packets to skip between
// updates.
type Geometric struct {
	src   *Source
	invLn float64 // 1 / ln(1-p)
	p     float64
}

// NewGeometric returns a geometric sampler with success probability p,
// 0 < p <= 1.
func NewGeometric(src *Source, p float64) *Geometric {
	g := &Geometric{src: src}
	g.SetP(p)
	return g
}

// SetP changes the success probability.
func (g *Geometric) SetP(p float64) {
	if p <= 0 {
		p = 1e-12
	}
	if p > 1 {
		p = 1
	}
	g.p = p
	if p == 1 {
		g.invLn = 0
	} else {
		g.invLn = 1 / math.Log1p(-p)
	}
}

// P returns the configured probability.
func (g *Geometric) P() float64 { return g.p }

// Next returns the number of failures preceding the next success
// (0 means the very next trial succeeds).
//memento:noalloc
func (g *Geometric) Next() int {
	if g.p >= 1 {
		return 0
	}
	u := g.src.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := math.Log(u) * g.invLn
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	return int(n)
}
