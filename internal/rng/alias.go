package rng

import (
	"errors"
	"math"
)

// Alias samples from an arbitrary discrete distribution in O(1) per
// draw using Vose's alias method. The trace generator uses it to draw
// Zipf-distributed flow ranks at line rate.
type Alias struct {
	src   *Source
	prob  []float64 // acceptance probability per column
	alias []int32   // fallback outcome per column
}

// NewAlias builds an alias table for the given non-negative weights
// (they need not sum to 1). At least one weight must be positive.
func NewAlias(src *Source, weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("rng: empty weight vector")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("rng: all weights zero")
	}
	a := &Alias{
		src:   src,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose's algorithm: scale weights to mean 1, split into columns
	// below/above the mean, pair them up.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small { // numerical leftovers
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// Next draws one outcome index.
func (a *Alias) Next() int {
	u := a.src.Uint64()
	// Column from the high 32 bits, acceptance test from the low 32.
	col := int(uint64(uint32(u>>32)) * uint64(len(a.prob)) >> 32)
	frac := float64(uint32(u)) / (1 << 32)
	if frac < a.prob[col] {
		return col
	}
	return int(a.alias[col])
}

// ZipfWeights returns weights proportional to 1/rank^s for ranks
// 1..n — the flow-popularity law the paper's traces follow.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
