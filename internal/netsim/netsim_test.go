package netsim

import (
	"math"
	"testing"

	"memento/internal/exact"
	"memento/internal/hierarchy"
	"memento/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	base := Config{
		Method: Sample, Points: 10, Budget: 1, Window: 1000,
		Hier: hierarchy.OneD{}, Counters: 100,
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.Hier = nil; return c },
		func(c Config) Config { c.Points = 0; return c },
		func(c Config) Config { c.Budget = 0; return c },
		func(c Config) Config { c.Window = 0; return c },
		func(c Config) Config { c.Method = Batch; c.BatchSize = 0; return c },
		func(c Config) Config { c.Method = Method(9); return c },
		func(c Config) Config { c.Counters = 0; return c },
	}
	for i, mod := range bad {
		if _, err := New(mod(base)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
}

func TestTauFromBudget(t *testing.T) {
	s := MustNew(Config{
		Method: Sample, Points: 10, Budget: 1, Window: 1000,
		Hier: hierarchy.OneD{}, Counters: 100,
	})
	// τ = B/(O+E) = 1/68.
	if math.Abs(s.Tau()-1.0/68) > 1e-12 {
		t.Fatalf("Sample tau = %v, want 1/68", s.Tau())
	}
	s = MustNew(Config{
		Method: Batch, BatchSize: 100, Points: 10, Budget: 1, Window: 1000,
		Hier: hierarchy.OneD{}, Counters: 100,
	})
	// τ = B·b/(O+E·b) = 100/464.
	if math.Abs(s.Tau()-100.0/464) > 1e-12 {
		t.Fatalf("Batch tau = %v, want 100/464", s.Tau())
	}
	// 2D defaults E to 8.
	s = MustNew(Config{
		Method: Sample, Points: 10, Budget: 1, Window: 1000,
		Hier: hierarchy.TwoD{}, Counters: 100,
	})
	if math.Abs(s.Tau()-1.0/72) > 1e-12 {
		t.Fatalf("2D Sample tau = %v, want 1/72", s.Tau())
	}
}

func TestBandwidthBudgetRespected(t *testing.T) {
	// All three methods must stay at or under B bytes/packet once
	// warmed up.
	gen := trace.MustNewGenerator(trace.Backbone, 5)
	for _, m := range []Method{Aggregation, Sample, Batch} {
		s := MustNew(Config{
			Method: m, BatchSize: 44, Points: 10, Budget: 1, Window: 1 << 15,
			Hier: hierarchy.OneD{}, Counters: 1000, Seed: 3,
		})
		for i := 0; i < 1<<17; i++ {
			s.Feed(gen.Next())
		}
		bpp := s.BytesPerPacket()
		if bpp > 1.05 {
			t.Errorf("%v: %v bytes/packet exceeds budget", m, bpp)
		}
		if s.Reports() == 0 {
			t.Errorf("%v: no reports sent", m)
		}
		// The sampling methods should also *use* the budget (±20%),
		// otherwise accuracy is being thrown away.
		if m != Aggregation && bpp < 0.8 {
			t.Errorf("%v: only %v bytes/packet of budget 1 used", m, bpp)
		}
	}
}

func TestReportCadence(t *testing.T) {
	// Sample sends ≈ τ·N messages; Batch ≈ τ·N/b; Aggregation far
	// fewer (its messages are huge).
	gen := trace.MustNewGenerator(trace.Backbone, 6)
	const n = 1 << 17
	counts := map[Method]uint64{}
	for _, m := range []Method{Aggregation, Sample, Batch} {
		s := MustNew(Config{
			Method: m, BatchSize: 44, Points: 10, Budget: 1, Window: 1 << 15,
			Hier: hierarchy.OneD{}, Counters: 1000, Seed: 4,
		})
		for i := 0; i < n; i++ {
			s.Feed(gen.Next())
		}
		counts[m] = s.Reports()
	}
	wantSample := float64(n) / 68
	if math.Abs(float64(counts[Sample])-wantSample) > 0.1*wantSample {
		t.Fatalf("Sample reports = %d, want ≈ %v", counts[Sample], wantSample)
	}
	// Sample reports once per (O+E)/B packets, Batch once per
	// (O+E·b)/B packets → ratio (O+E·b)/(O+E) = 240/68.
	ratio := float64(counts[Sample]) / float64(counts[Batch])
	want := 240.0 / 68
	if math.Abs(ratio-want) > 0.5 {
		t.Fatalf("Sample/Batch report ratio = %v, want ≈ %v", ratio, want)
	}
	if counts[Aggregation] >= counts[Batch] {
		t.Fatalf("Aggregation sent %d reports, must be rarest (batch %d)",
			counts[Aggregation], counts[Batch])
	}
}

// subnetShareWorkload mixes a heavy /8 with noise for estimate checks.
func subnetShareWorkload(s *Sim, oracle *exact.SlidingWindow[hierarchy.Prefix], n int) {
	gen := trace.MustNewGenerator(trace.Backbone, 7)
	heavy := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	r := trace.MustNewGenerator(trace.Edge, 8) // second stream as randomness source
	_ = r
	i := 0
	for i < n {
		p := gen.Next()
		if i%3 == 0 { // ~33% of traffic from the heavy /8
			p.Src = hierarchy.IPv4(10, byte(p.Src>>16), byte(p.Src>>8), byte(p.Src))
		}
		s.Feed(p)
		if oracle != nil {
			oracle.Add(hierarchy.Prefix{Src: hierarchy.MaskBytes(p.Src, 1), SrcLen: 1})
		}
		_ = heavy
		i++
	}
}

func TestEstimatesTrackTruth(t *testing.T) {
	// All three methods must estimate a heavy /8's window share within
	// a broad envelope at B = 1 byte/packet.
	const window = 1 << 15
	const n = 4 * window
	heavy := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	for _, m := range []Method{Aggregation, Sample, Batch} {
		s := MustNew(Config{
			Method: m, BatchSize: 44, Points: 10, Budget: 1, Window: window,
			Hier: hierarchy.OneD{}, Counters: 2000, Seed: 9,
		})
		oracle := exact.MustNewSlidingWindow[hierarchy.Prefix](window)
		subnetShareWorkload(s, oracle, n)
		truth := float64(oracle.Count(heavy))
		got := s.Estimate(heavy)
		if truth < float64(window)/4 {
			t.Fatalf("fixture broken: heavy subnet truth = %v", truth)
		}
		// Loose 50% envelope: delay + sampling at B=1 is substantial
		// but must not lose the subnet entirely.
		if got < 0.5*truth || got > 1.8*truth {
			t.Errorf("%v: estimate %v vs truth %v outside envelope", m, got, truth)
		}
	}
}

func TestOutputFindsHeavySubnet(t *testing.T) {
	const window = 1 << 15
	heavy := hierarchy.Prefix{Src: hierarchy.IPv4(10, 0, 0, 0), SrcLen: 1}
	for _, m := range []Method{Aggregation, Sample, Batch} {
		s := MustNew(Config{
			Method: m, BatchSize: 44, Points: 10, Budget: 1, Window: window,
			Hier: hierarchy.OneD{}, Counters: 2000, Seed: 10,
		})
		subnetShareWorkload(s, nil, 4*window)
		out := s.Output(0.2)
		found := false
		for _, e := range out {
			if e.Prefix == heavy {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: 33%% subnet missing from Output: %v", m, out)
		}
	}
}

func TestFlowsHierarchyDMemento(t *testing.T) {
	// D-Memento = the Flows degenerate hierarchy. A single heavy flow
	// must be tracked.
	const window = 1 << 14
	s := MustNew(Config{
		Method: Batch, BatchSize: 44, Points: 5, Budget: 1, Window: window,
		Hier: hierarchy.Flows{}, Counters: 512, Seed: 11,
	})
	gen := trace.MustNewGenerator(trace.Edge, 12)
	heavySrc := hierarchy.IPv4(99, 1, 2, 3)
	for i := 0; i < 4*window; i++ {
		p := gen.Next()
		if i%4 == 0 {
			p.Src = heavySrc
		}
		s.Feed(p)
	}
	est := s.Estimate(hierarchy.Prefix{Src: heavySrc, SrcLen: 4})
	want := float64(window) / 4
	if est < 0.4*want || est > 2.5*want {
		t.Fatalf("D-Memento estimate %v for 25%% flow, want ≈ %v", est, want)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() float64 {
		s := MustNew(Config{
			Method: Batch, BatchSize: 20, Points: 4, Budget: 1, Window: 1 << 13,
			Hier: hierarchy.OneD{}, Counters: 500, Seed: 13,
		})
		gen := trace.MustNewGenerator(trace.Datacenter, 14)
		for i := 0; i < 1<<15; i++ {
			s.Feed(gen.Next())
		}
		return s.Estimate(hierarchy.Prefix{}) + float64(s.Reports())
	}
	if mk() != mk() {
		t.Fatal("simulation not deterministic")
	}
}

func TestAggregationViewsReplaceNotAccumulate(t *testing.T) {
	// Stale per-agent views must be replaced wholesale on each report,
	// not summed forever.
	const window = 1 << 12
	s := MustNew(Config{
		Method: Aggregation, Points: 2, Budget: 4, Window: window,
		Hier: hierarchy.Flows{}, Seed: 15,
	})
	key := hierarchy.Prefix{Src: hierarchy.IPv4(1, 2, 3, 4), SrcLen: 4}
	// Saturate with one flow, then flush it out with another and give
	// the agents time to re-report.
	for i := 0; i < 4*window; i++ {
		s.Feed(hierarchy.Packet{Src: hierarchy.IPv4(1, 2, 3, 4)})
	}
	mid := s.Estimate(key)
	if mid < float64(window)/4 {
		t.Fatalf("estimate %v after saturation too small", mid)
	}
	for i := 0; i < 8*window; i++ {
		s.Feed(hierarchy.Packet{Src: hierarchy.IPv4(9, 9, 9, 9)})
	}
	if got := s.Estimate(key); got > mid/4 {
		t.Fatalf("stale flow estimate %v did not decay (was %v)", got, mid)
	}
}
