// Package netsim is a deterministic, event-driven simulation of the
// paper's network-wide measurement system (Sections 4.3, 6.3 and 6.4):
// m measurement points observe disjoint parts of a global packet
// stream and report to a central controller under a per-packet
// bandwidth budget of B bytes, using one of three communication
// methods:
//
//   - Sample: report each sampled packet immediately (one sample per
//     message), τ = B/(O+E).
//   - Batch: accumulate b samples per message, τ = B·b/(O+E·b) —
//     better payload ratio, higher reporting delay.
//   - Aggregation: the idealized baseline — agents keep *exact* local
//     sliding windows and ship their entire tables whenever the
//     accumulated byte budget covers the message; the controller
//     merges with no accuracy loss. All of its error comes from
//     staleness, exactly as the paper constructs it.
//
// The controller runs D-Memento / D-H-Memento: a single (H-)Memento
// instance driven externally — Full updates for reported samples,
// Window updates for the packets the report covers (Section 4.3
// "Controller algorithm").
//
// Time is the global packet index; report delivery is immediate
// (Section 5.2: in-datacenter RTT is negligible against window sizes).
// Everything is deterministic given the seed.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"memento/internal/core"
	"memento/internal/exact"
	"memento/internal/hhhset"
	"memento/internal/hierarchy"
	"memento/internal/obs"
	"memento/internal/rng"
)

// Method selects the communication scheme.
type Method int

// Communication methods of Section 4.3.
const (
	Aggregation Method = iota
	Sample
	Batch
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Aggregation:
		return "Aggregation"
	case Sample:
		return "Sample"
	case Batch:
		return "Batch"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config parameterizes a simulation.
type Config struct {
	// Method is the communication scheme.
	Method Method
	// Points is m, the number of measurement points.
	Points int
	// Budget is B, the control bandwidth in bytes per ingress packet.
	Budget float64
	// BatchSize is b for the Batch method; Sample forces 1.
	BatchSize int
	// OverheadBytes is O, the per-message header cost (default 64).
	OverheadBytes float64
	// SampleBytes is E, bytes per reported sample (default 4 for 1D
	// hierarchies, 8 for 2D).
	SampleBytes float64
	// Window is W, the network-wide window in packets.
	Window int
	// Hier is the prefix domain (hierarchy.Flows for plain HH).
	Hier hierarchy.Hierarchy
	// Counters sizes the controller sketch (Sample/Batch).
	Counters int
	// Delta is the output confidence (default 0.001).
	Delta float64
	// Seed fixes all randomness.
	Seed uint64
}

// agent is one measurement point.
type agent struct {
	// Sample/Batch state.
	buf      []hierarchy.Packet
	observed int // local packets since the last report
	// Aggregation state.
	win    *exact.SlidingWindow[hierarchy.Packet]
	credit float64
	view   map[hierarchy.Prefix]float64 // controller's copy, per agent
}

// Sim is a network-wide measurement simulation.
type Sim struct {
	cfg    Config
	hier   hierarchy.Hierarchy
	h      int
	tau    float64
	b      int
	agents []agent
	rr     int
	src    *rng.Source

	hh *core.HHH // controller sketch (Sample/Batch)

	packets   uint64
	reports   uint64
	bytesSent float64
}

// New validates cfg and builds a simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.Hier == nil {
		return nil, errors.New("netsim: hierarchy is required")
	}
	if cfg.Points <= 0 {
		return nil, errors.New("netsim: need at least one measurement point")
	}
	if cfg.Budget <= 0 {
		return nil, errors.New("netsim: budget must be positive")
	}
	if cfg.Window <= 0 {
		return nil, errors.New("netsim: window must be positive")
	}
	if cfg.OverheadBytes == 0 {
		cfg.OverheadBytes = 64
	}
	if cfg.SampleBytes == 0 {
		if cfg.Hier.Dims() == 2 {
			cfg.SampleBytes = 8
		} else {
			cfg.SampleBytes = 4
		}
	}
	b := 1
	switch cfg.Method {
	case Sample:
	case Batch:
		b = cfg.BatchSize
		if b <= 0 {
			return nil, errors.New("netsim: Batch needs BatchSize > 0")
		}
	case Aggregation:
	default:
		return nil, fmt.Errorf("netsim: unknown method %v", cfg.Method)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x6e657473696d // "netsim"
	}
	s := &Sim{
		cfg:    cfg,
		hier:   cfg.Hier,
		h:      cfg.Hier.H(),
		b:      b,
		agents: make([]agent, cfg.Points),
		src:    rng.New(seed),
	}
	switch cfg.Method {
	case Sample, Batch:
		s.tau = cfg.Budget * float64(b) / (cfg.OverheadBytes + cfg.SampleBytes*float64(b))
		if s.tau > 1 {
			s.tau = 1
		}
		if cfg.Counters <= 0 {
			return nil, errors.New("netsim: Sample/Batch need controller Counters")
		}
		v := int(math.Round(float64(s.h) / s.tau))
		if v < s.h {
			v = s.h
		}
		hh, err := core.NewHHH(core.HHHConfig{
			Hierarchy: cfg.Hier,
			Window:    cfg.Window,
			Counters:  cfg.Counters,
			V:         v,
			Delta:     cfg.Delta,
			Seed:      seed + 1,
		})
		if err != nil {
			return nil, err
		}
		s.hh = hh
	case Aggregation:
		local := cfg.Window / cfg.Points
		if local < 1 {
			local = 1
		}
		for i := range s.agents {
			w, err := exact.NewSlidingWindow[hierarchy.Packet](local)
			if err != nil {
				return nil, err
			}
			s.agents[i].win = w
			s.agents[i].view = map[hierarchy.Prefix]float64{}
		}
	}
	return s, nil
}

// MustNew panics on error; for tests and examples.
func MustNew(cfg Config) *Sim {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Tau returns the budget-implied sampling probability (0 for
// Aggregation, which does not sample).
func (s *Sim) Tau() float64 { return s.tau }

// Method returns the configured communication method.
func (s *Sim) Method() Method { return s.cfg.Method }

// Packets returns the number of packets fed so far.
func (s *Sim) Packets() uint64 { return s.packets }

// Reports returns the number of controller messages sent.
func (s *Sim) Reports() uint64 { return s.reports }

// BytesSent returns the total control-plane bytes consumed.
func (s *Sim) BytesSent() float64 { return s.bytesSent }

// BytesPerPacket returns the realized control bandwidth use.
func (s *Sim) BytesPerPacket() float64 {
	if s.packets == 0 {
		return 0
	}
	return s.bytesSent / float64(s.packets)
}

// Register exposes the sim's transfer ledger in r under
// <prefix>_<name> (memento_<layer>_<name> convention; pick a prefix
// that distinguishes method and run, e.g. memento_netsim_sample).
// Values are read at scrape time; the simulation itself is
// single-threaded, so scrape after (or between) Feed calls.
func (s *Sim) Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.RegisterFunc(prefix+"_packets_total", func() float64 { return float64(s.packets) })
	r.RegisterFunc(prefix+"_reports_total", func() float64 { return float64(s.reports) })
	r.RegisterFunc(prefix+"_bytes_sent_total", func() float64 { return s.bytesSent })
	r.RegisterFunc(prefix+"_bytes_per_packet", s.BytesPerPacket)
	r.RegisterFunc(prefix+"_tau", func() float64 { return s.tau })
}

// Feed processes one global packet: it is assigned round-robin to a
// measurement point, which samples/accumulates and possibly emits a
// report that the controller consumes immediately.
func (s *Sim) Feed(p hierarchy.Packet) {
	s.packets++
	a := &s.agents[s.rr]
	s.rr++
	if s.rr == len(s.agents) {
		s.rr = 0
	}
	switch s.cfg.Method {
	case Sample, Batch:
		a.observed++
		if s.src.Float64() < s.tau {
			a.buf = append(a.buf, p)
		}
		if len(a.buf) >= s.b {
			s.deliverSamples(a)
		}
	case Aggregation:
		a.win.Add(p)
		a.credit += s.cfg.Budget
		cost := s.cfg.OverheadBytes + s.cfg.SampleBytes*float64(a.win.Distinct())
		if a.credit >= cost {
			s.deliverTable(a, cost)
		}
	}
}

// deliverSamples sends a Sample/Batch report: the controller performs
// one Full update per sample (on a uniformly chosen prefix pattern, so
// each pattern is sampled at rate τ/H = 1/V) and Window updates for
// the remaining packets the report covers.
func (s *Sim) deliverSamples(a *agent) {
	s.reports++
	s.bytesSent += s.cfg.OverheadBytes + s.cfg.SampleBytes*float64(len(a.buf))
	for _, pkt := range a.buf {
		i := 0
		if s.h > 1 {
			i = s.src.Intn(s.h)
		}
		s.hh.FullUpdatePrefix(s.hier.Prefix(pkt, i))
	}
	// The packets the report covers but did not sample slide the
	// window in one bulk advance instead of per-packet calls.
	s.hh.WindowAdvance(a.observed - len(a.buf))
	a.buf = a.buf[:0]
	a.observed = 0
}

// deliverTable ships an agent's full exact table (Aggregation): the
// controller replaces its per-agent view with prefix-level sums, with
// no merge loss — the idealized baseline of Section 4.3.
func (s *Sim) deliverTable(a *agent, cost float64) {
	s.reports++
	s.bytesSent += cost
	a.credit -= cost
	clear(a.view)
	a.win.Each(func(pkt hierarchy.Packet, c int) bool {
		hp := hierarchy.Packet{Src: pkt.Src, Dst: pkt.Dst}
		for i := 0; i < s.h; i++ {
			a.view[s.hier.Prefix(hp, i)] += float64(c)
		}
		return true
	})
}

// Estimate returns the controller's current frequency estimate for a
// prefix, in packets over the network-wide window.
func (s *Sim) Estimate(p hierarchy.Prefix) float64 {
	switch s.cfg.Method {
	case Sample, Batch:
		return s.hh.Query(p)
	default:
		total := 0.0
		for i := range s.agents {
			total += s.agents[i].view[p]
		}
		return total
	}
}

// Bounds implements hhhset.Estimator against the controller state.
func (s *Sim) Bounds(p hierarchy.Prefix) (upper, lower float64) {
	switch s.cfg.Method {
	case Sample, Batch:
		return s.hh.QueryBounds(p)
	default:
		e := s.Estimate(p)
		return e, e
	}
}

// Output returns the controller's HHH set at threshold theta (relative
// to the window).
func (s *Sim) Output(theta float64) []hhhset.Entry {
	switch s.cfg.Method {
	case Sample, Batch:
		entries := s.hh.Output(theta)
		out := make([]hhhset.Entry, len(entries))
		for i, e := range entries {
			out[i] = hhhset.Entry{Prefix: e.Prefix, Estimate: e.Estimate, Conditioned: e.Conditioned}
		}
		return out
	default:
		seen := map[hierarchy.Prefix]struct{}{}
		var cands []hierarchy.Prefix
		for i := range s.agents {
			for p := range s.agents[i].view {
				if _, dup := seen[p]; !dup {
					seen[p] = struct{}{}
					cands = append(cands, p)
				}
			}
		}
		return hhhset.Compute(s.hier, s, cands, theta*float64(s.cfg.Window), 0)
	}
}
