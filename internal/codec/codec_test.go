// Unit tests for the format primitives; the end-to-end behavior
// (round trips, rejection, goldens) lives with the encoders in
// internal/core and internal/shard.

package codec

import (
	"errors"
	"math"
	"testing"

	"memento/internal/hierarchy"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Version: Version, Kind: KindHHH, Flags: FlagRestore, Digest: 0xdeadbeefcafef00d}
	buf := AppendHeader(nil, h)
	if len(buf) != HeaderSize {
		t.Fatalf("header encodes to %d bytes, want %d", len(buf), HeaderSize)
	}
	got, rest, err := ReadHeader(append(buf, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if len(rest) != 3 {
		t.Fatalf("rest has %d bytes, want 3", len(rest))
	}

	if _, _, err := ReadHeader(buf[:HeaderSize-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: %v", err)
	}
	bad := append([]byte{}, buf...)
	bad[0] ^= 0xff
	if _, _, err := ReadHeader(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	future := AppendHeader(nil, Header{Version: Version + 1, Kind: KindSketch})
	if _, _, err := ReadHeader(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
	zero := AppendHeader(nil, Header{Version: 0, Kind: KindSketch})
	if _, _, err := ReadHeader(zero); !errors.Is(err, ErrVersion) {
		t.Fatalf("zero version: %v", err)
	}
}

func TestDigestDistinguishesConfigs(t *testing.T) {
	base := SketchDigest(1<<12, 64, 8, 1)
	for _, other := range []uint64{
		SketchDigest(1<<13, 64, 8, 1),
		SketchDigest(1<<12, 128, 8, 1),
		SketchDigest(1<<12, 64, 16, 1),
		SketchDigest(1<<12, 64, 8, 2),
		HHHDigest(HierOneD, 1<<12, 64, 8, 1),
	} {
		if other == base {
			t.Fatalf("digest collision: %#x", base)
		}
	}
	if SketchDigest(1<<12, 64, 8, 1) != base {
		t.Fatal("digest not deterministic")
	}
	// Field order matters: swapping two equal-width fields changes it.
	if Digest(1, 2) == Digest(2, 1) {
		t.Fatal("digest ignores field order")
	}
}

func TestHierIDRoundTrip(t *testing.T) {
	for _, h := range []hierarchy.Hierarchy{hierarchy.OneD{}, hierarchy.TwoD{}, hierarchy.Flows{}} {
		id, err := HierID(h)
		if err != nil {
			t.Fatal(err)
		}
		back, err := HierByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != h.String() {
			t.Fatalf("round trip: %v -> %d -> %v", h, id, back)
		}
	}
	if _, err := HierByID(99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown id: %v", err)
	}
}

func TestCursorBounds(t *testing.T) {
	buf := AppendHeader(nil, Header{Version: Version, Kind: KindSketch})[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 7) // u64 = 7
	buf = append(buf, 0x85, 0x02)             // uvarint 261
	c := NewCursor(buf)
	if v := c.Uint64(); v != 7 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v := c.Uvarint(); v != 261 {
		t.Fatalf("Uvarint = %d", v)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	// Reads past the end record an error and return zero values.
	if v := c.Uint32(); v != 0 || c.Err() == nil {
		t.Fatalf("overread: v=%d err=%v", v, c.Err())
	}
	// Subsequent reads stay at the first error.
	first := c.Err()
	_ = c.Byte()
	if c.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestCursorCountBounds(t *testing.T) {
	// A count claiming more entries than the remaining bytes can back
	// is rejected before any allocation decision.
	buf := []byte{0xff, 0xff, 0x03} // uvarint 65535
	c := NewCursor(append(buf, 1, 2, 3, 4))
	if n := c.Count(1<<20, 4); n != 0 || !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("oversized count accepted: n=%d err=%v", n, c.Err())
	}
	// Within both bounds it passes.
	c = NewCursor(append([]byte{3}, 1, 2, 3, 4, 5, 6))
	if n := c.Count(10, 2); n != 3 || c.Err() != nil {
		t.Fatalf("valid count: n=%d err=%v", n, c.Err())
	}
	// Above the absolute limit it fails regardless of bytes.
	c = NewCursor(append([]byte{9}, make([]byte, 100)...))
	if n := c.Count(8, 1); n != 0 || c.Err() == nil {
		t.Fatalf("limit ignored: n=%d", n)
	}
}

func TestCursorFloatRejectsNaN(t *testing.T) {
	var buf []byte
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(math.Float64bits(math.NaN())>>(56-8*i)))
	}
	c := NewCursor(buf)
	if v := c.Float64(); !errors.Is(c.Err(), ErrCorrupt) {
		t.Fatalf("NaN accepted: %v (err %v)", v, c.Err())
	}
}

func TestPrefixKeysValidation(t *testing.T) {
	pk := PrefixKeys{}
	p := hierarchy.Prefix{Src: hierarchy.IPv4(10, 20, 0, 0), SrcLen: 2}
	buf := pk.AppendKey(nil, p)
	if len(buf) != pk.Width() {
		t.Fatalf("encoded %d bytes, want %d", len(buf), pk.Width())
	}
	back, err := pk.DecodeKey(buf)
	if err != nil || back != p {
		t.Fatalf("round trip: %v (%v)", back, err)
	}
	// Length out of range.
	bad := append([]byte{}, buf...)
	bad[8] = 5
	if _, err := pk.DecodeKey(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad length: %v", err)
	}
	// Non-canonical bits beyond the kept bytes.
	bad = append([]byte{}, buf...)
	bad[3] = 0xff // byte 4 of src, but SrcLen is 2
	if _, err := pk.DecodeKey(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-canonical: %v", err)
	}
}
