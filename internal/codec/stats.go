// Package-wide codec ledgers: records and wire bytes encoded and
// decoded, broken down by record kind. The cells are plain padded
// atomics owned by this package — hot encode paths (snapshot
// AppendTo is //memento:noalloc) pay two atomic adds, nothing more —
// and RegisterMetrics exposes them in an obs.Registry at scrape
// time.
//
// Accounting convention: every top-level record encoder/decoder
// accounts the full record under its own kind, including embedded
// content. Containers overlap with their members — a KindHHHDelta
// base embeds a KindHHH record and both ledgers see their full
// spans, so summing bytes across kinds double-counts envelopes.
// Per-kind series are individually exact.

package codec

import "memento/internal/obs"

// kindNames maps record kinds to the stable metric name components
// used by RegisterMetrics. Index 0 collects out-of-range kinds.
var kindNames = [...]string{
	KindSketch:      "sketch",
	KindHHH:         "hhh",
	KindSketchSet:   "sketch_set",
	KindHHHSet:      "hhh_set",
	KindDelta:       "delta",
	KindHHHDelta:    "hhh_delta",
	KindHHHDeltaSet: "hhh_delta_set",
}

var (
	encRecords [len(kindNames)]obs.Counter
	encBytes   [len(kindNames)]obs.Counter
	decRecords [len(kindNames)]obs.Counter
	decBytes   [len(kindNames)]obs.Counter
)

// AccountEncode records one encoded record of the given kind and its
// wire bytes in the package ledger.
//
//memento:noalloc
func AccountEncode(kind uint8, bytes int) {
	if int(kind) >= len(kindNames) {
		kind = 0
	}
	encRecords[kind].Inc()
	encBytes[kind].Add(uint64(bytes))
}

// AccountDecode records one successfully decoded record of the given
// kind and its wire bytes in the package ledger.
//
//memento:noalloc
func AccountDecode(kind uint8, bytes int) {
	if int(kind) >= len(kindNames) {
		kind = 0
	}
	decRecords[kind].Inc()
	decBytes[kind].Add(uint64(bytes))
}

// RegisterMetrics exposes the package ledgers in r as
// memento_codec_{encoded,decoded}_{records,bytes}_<kind>_total.
// The ledgers are process-wide (they outlive any registry); nil r is
// a no-op.
func RegisterMetrics(r *obs.Registry) {
	for kind, name := range kindNames {
		if name == "" {
			continue
		}
		r.RegisterCounter("memento_codec_encoded_records_"+name+"_total", &encRecords[kind])
		r.RegisterCounter("memento_codec_encoded_bytes_"+name+"_total", &encBytes[kind])
		r.RegisterCounter("memento_codec_decoded_records_"+name+"_total", &decRecords[kind])
		r.RegisterCounter("memento_codec_decoded_bytes_"+name+"_total", &decBytes[kind])
	}
}
