// TraceContext: the optional report-tracing envelope carried in front
// of network-wide report frames (DESIGN.md §11). An agent that has
// negotiated tracing stamps every report with its identity, a
// monotone per-agent report sequence number and the capture-time
// clock reading; the controller completes the span at apply time into
// capture→apply latency histograms and per-agent freshness gauges.
//
// Wire layout (big-endian, fixed width except the name):
//
//	u8  len  — agent id length (1..MaxTraceAgent)
//	...      — agent id bytes
//	u64 seq  — per-agent report sequence number
//	u64 ns   — capture time, unix nanoseconds (int64 bits)
//
// The context is versionless on purpose: whether it is present at all
// is negotiated per connection (the trace probe handshake in
// internal/netwide), so untraced v1 peers never see these bytes.

package codec

import "encoding/binary"

// MaxTraceAgent bounds the agent id carried in a trace context,
// matching the netwide Hello name limit.
const MaxTraceAgent = 255

// TraceContextSize returns the encoded size of a context carrying an
// n-byte agent id.
func TraceContextSize(n int) int { return 1 + n + 8 + 8 }

// TraceContext identifies one report capture: which agent, which
// report in its sequence, and when the enclosed state was captured.
type TraceContext struct {
	AgentID      string
	Seq          uint64
	CaptureNanos int64
}

// AppendTraceContext appends tc in wire order. Agent ids longer than
// MaxTraceAgent are truncated (the caller validates at handshake
// time; truncation keeps Append infallible for hot paths).
func AppendTraceContext(dst []byte, tc TraceContext) []byte {
	id := tc.AgentID
	if len(id) > MaxTraceAgent {
		id = id[:MaxTraceAgent]
	}
	dst = append(dst, byte(len(id)))
	dst = append(dst, id...)
	dst = binary.BigEndian.AppendUint64(dst, tc.Seq)
	return binary.BigEndian.AppendUint64(dst, uint64(tc.CaptureNanos))
}

// DecodeTraceContext reads one context from the front of p and
// returns it together with the remaining bytes (the enclosed report
// payload). Strict: short inputs and empty agent ids are ErrCorrupt.
func DecodeTraceContext(p []byte) (TraceContext, []byte, error) {
	c := NewCursor(p)
	n := int(c.Byte())
	if c.Err() == nil && n == 0 {
		return TraceContext{}, nil, Corruptf("trace context: empty agent id")
	}
	tc := TraceContext{AgentID: string(c.Bytes(n))}
	tc.Seq = c.Uint64()
	tc.CaptureNanos = int64(c.Uint64())
	if err := c.Err(); err != nil {
		return TraceContext{}, nil, Corruptf("trace context: %v", err)
	}
	return tc, c.Rest(), nil
}
