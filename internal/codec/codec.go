// Package codec defines the durable binary format shared by every
// layer that moves sketch state out of a process: checkpoint files
// written by internal/shard, snapshot frames shipped over the
// network-wide protocol (internal/netwide), and the offline files
// cmd/mementoctl saves, merges and diffs.
//
// The format is versioned and self-describing. Every record starts
// with a fixed 16-byte header:
//
//	u32 magic   — 'M''S''K''T' (0x4D534B54)
//	u8  version — format version (Version; currently 1)
//	u8  kind    — record kind (KindSketch, KindHHH, KindSketchSet,
//	              KindHHHSet)
//	u16 flags   — FlagRestore when the restore plane (block ring,
//	              frame position, update breakdown) is present
//	u64 digest  — seed-independent configuration digest; decoders
//	              verify it against the expected configuration before
//	              touching the body
//
// Big-endian throughout, matching the netwide wire protocol. Bodies
// use fixed-width scalars for the configuration plane and uvarints
// for per-entry fields. Decoding is strict: every count is validated
// against the bytes that remain *before* anything is allocated, so a
// hostile length field can neither panic a decoder nor balloon its
// memory, and all failures surface as (wrapped) typed errors —
// ErrBadMagic, ErrVersion, ErrKind, ErrCorrupt, ErrConfigMismatch —
// never panics. FuzzDecodeSnapshot and friends pin that contract.
//
// The digest deliberately excludes seeds and hash-function identities:
// two processes with the same window/counter/scale configuration (and
// hierarchy, for HHH records) interoperate even though their in-memory
// table layouts differ. Decoders therefore rebuild key indexes by
// re-inserting entries under their own hash functions rather than
// trusting the source's slot layout.
//
//memento:deterministic
//memento:nopanic Decode* Read*
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"memento/internal/hierarchy"
	"memento/internal/keyidx"
)

// Magic identifies a Memento snapshot record ("MSKT").
const Magic = uint32(0x4D534B54)

// Version is the current format version. Decoders reject anything
// newer; the golden-file test pins version 1 byte-for-byte so older
// readers keep working.
const Version = 1

// Record kinds.
const (
	// KindSketch is a single core.Snapshot[K] record.
	KindSketch = uint8(1)
	// KindHHH is a single core.HHHSnapshot record.
	KindHHH = uint8(2)
	// KindSketchSet is a sharded checkpoint: N KindSketch blobs.
	KindSketchSet = uint8(3)
	// KindHHHSet is a sharded checkpoint: N KindHHH blobs.
	KindHHHSet = uint8(4)
	// KindDelta is an epoch-stamped replication record for a single
	// core sketch: either a chain base (FlagBase, embedding a full
	// KindSketch record) or an incremental delta carrying only the
	// counters that changed since the previous epoch (internal/delta).
	KindDelta = uint8(5)
	// KindHHHDelta is KindDelta for an H-Memento instance (prefix
	// keys; bases embed KindHHH records).
	KindHHHDelta = uint8(6)
	// KindHHHDeltaSet is a sharded delta checkpoint: N KindHHHDelta
	// blobs advancing one chain in lockstep (shard.CheckpointDelta).
	KindHHHDeltaSet = uint8(7)
)

// Flags.
const (
	// FlagRestore marks a record carrying the restore plane (block
	// ring, frame position, update breakdown) in addition to the
	// queryable state; only such records can rehydrate a live sketch.
	FlagRestore = uint16(1 << 0)

	// FlagBase marks a Kind*Delta record that starts (or restarts) a
	// chain: its body embeds a full snapshot record instead of a diff.
	FlagBase = uint16(1 << 1)
	// FlagClearMonitored marks a delta whose interval included an
	// in-frame flush (frame boundary or Reset): the applier clears the
	// monitored counter set before installing the carried entries.
	FlagClearMonitored = uint16(1 << 2)
	// FlagClearOverflow marks a delta whose interval cleared the
	// overflow table wholesale: the applier clears it before
	// installing entries. Reserved — the current encoder re-bases on
	// the only event that clears B (a full Reset) instead of emitting
	// this flag.
	FlagClearOverflow = uint16(1 << 3)
)

// HeaderSize is the fixed encoded size of a Header.
const HeaderSize = 16

// MaxRecord bounds a single snapshot blob (64 MiB), protecting
// decoders from hostile length prefixes in set records and streams.
const MaxRecord = 1 << 26

// MaxShards bounds the shard count of a set record.
const MaxShards = 1 << 16

// Typed decode errors. Decoders wrap these with context; test with
// errors.Is.
var (
	ErrBadMagic       = errors.New("codec: bad magic")
	ErrVersion        = errors.New("codec: unsupported format version")
	ErrKind           = errors.New("codec: unexpected record kind")
	ErrCorrupt        = errors.New("codec: corrupt or truncated record")
	ErrConfigMismatch = errors.New("codec: configuration digest mismatch")
	ErrNotRestorable  = errors.New("codec: record lacks the restore plane")
)

// Corruptf wraps ErrCorrupt with context, for decoders in other
// packages that share the typed-error contract.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Header is the fixed preamble of every record.
type Header struct {
	Version uint8
	Kind    uint8
	Flags   uint16
	Digest  uint64
}

// AppendHeader appends h in wire order.
func AppendHeader(dst []byte, h Header) []byte {
	dst = binary.BigEndian.AppendUint32(dst, Magic)
	dst = append(dst, h.Version, h.Kind)
	dst = binary.BigEndian.AppendUint16(dst, h.Flags)
	return binary.BigEndian.AppendUint64(dst, h.Digest)
}

// ReadHeader parses and validates the magic and version, returning
// the header and the remaining body bytes.
func ReadHeader(data []byte) (Header, []byte, error) {
	if len(data) < HeaderSize {
		return Header{}, nil, Corruptf("record shorter than header: %d bytes", len(data))
	}
	if binary.BigEndian.Uint32(data) != Magic {
		return Header{}, nil, ErrBadMagic
	}
	h := Header{
		Version: data[4],
		Kind:    data[5],
		Flags:   binary.BigEndian.Uint16(data[6:8]),
		Digest:  binary.BigEndian.Uint64(data[8:16]),
	}
	if h.Version == 0 || h.Version > Version {
		return Header{}, nil, fmt.Errorf("%w: %d (max %d)", ErrVersion, h.Version, Version)
	}
	return h, data[HeaderSize:], nil
}

// Digest chains seed-independent configuration fields into the header
// digest via the SplitMix64 finalizer. Field order matters; both
// sides list fields identically.
func Digest(fields ...uint64) uint64 {
	d := uint64(Magic) ^ uint64(Version)<<32
	for _, f := range fields {
		d = keyidx.Mix64(d ^ f)
	}
	return d
}

// SketchDigest is the digest of a Memento sketch configuration: the
// effective window, counter budget k, overflow threshold in sampled
// counts, and the query scale factor. Seeds and hash identities are
// deliberately absent (see the package comment).
func SketchDigest(window, counters, blockCounts uint64, scale float64) uint64 {
	return Digest(window, counters, blockCounts, math.Float64bits(scale))
}

// HHHDigest extends SketchDigest with the hierarchy identity.
func HHHDigest(hierID uint8, window, counters, blockCounts uint64, scale float64) uint64 {
	return Digest(uint64(hierID), window, counters, blockCounts, math.Float64bits(scale))
}

// SetDigest is the digest of a sharded checkpoint envelope; per-shard
// blobs carry their own sketch digests.
func SetDigest(kind uint8, shards int) uint64 {
	return Digest(uint64(kind), uint64(shards))
}

// Hierarchy identifiers for HHH records.
const (
	HierOneD  = uint8(1)
	HierTwoD  = uint8(2)
	HierFlows = uint8(3)
)

// HierID maps a hierarchy to its wire identifier. Unknown
// (caller-defined) hierarchies cannot be serialized.
func HierID(h hierarchy.Hierarchy) (uint8, error) {
	switch h.(type) {
	case hierarchy.OneD:
		return HierOneD, nil
	case hierarchy.TwoD:
		return HierTwoD, nil
	case hierarchy.Flows:
		return HierFlows, nil
	default:
		return 0, fmt.Errorf("codec: hierarchy %v has no wire identifier", h)
	}
}

// HierByID inverts HierID.
func HierByID(id uint8) (hierarchy.Hierarchy, error) {
	switch id {
	case HierOneD:
		return hierarchy.OneD{}, nil
	case HierTwoD:
		return hierarchy.TwoD{}, nil
	case HierFlows:
		return hierarchy.Flows{}, nil
	default:
		return nil, Corruptf("unknown hierarchy id %d", id)
	}
}

// KeyCodec serializes sketch keys of type K with a fixed width, which
// is what lets decoders bound entry counts by the bytes that remain.
type KeyCodec[K comparable] interface {
	// Width is the encoded size of one key in bytes (> 0).
	Width() int
	// AppendKey appends k's encoding to dst.
	AppendKey(dst []byte, k K) []byte
	// DecodeKey reads one key from the first Width() bytes of src,
	// which the caller guarantees are present. Implementations
	// validate key invariants and return wrapped ErrCorrupt.
	DecodeKey(src []byte) (K, error)
}

// Uint64Keys encodes uint64 keys big-endian.
type Uint64Keys struct{}

// Width implements KeyCodec.
func (Uint64Keys) Width() int { return 8 }

// AppendKey implements KeyCodec.
func (Uint64Keys) AppendKey(dst []byte, k uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, k)
}

// DecodeKey implements KeyCodec.
func (Uint64Keys) DecodeKey(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, Corruptf("uint64 key needs 8 bytes, have %d", len(src))
	}
	return binary.BigEndian.Uint64(src), nil
}

// Uint32Keys encodes uint32 keys big-endian.
type Uint32Keys struct{}

// Width implements KeyCodec.
func (Uint32Keys) Width() int { return 4 }

// AppendKey implements KeyCodec.
func (Uint32Keys) AppendKey(dst []byte, k uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, k)
}

// DecodeKey implements KeyCodec.
func (Uint32Keys) DecodeKey(src []byte) (uint32, error) {
	if len(src) < 4 {
		return 0, Corruptf("uint32 key needs 4 bytes, have %d", len(src))
	}
	return binary.BigEndian.Uint32(src), nil
}

// PrefixKeys encodes hierarchy.Prefix keys (10 bytes: src, dst,
// srcLen, dstLen), rejecting non-canonical prefixes on decode.
type PrefixKeys struct{}

// Width implements KeyCodec.
func (PrefixKeys) Width() int { return 10 }

// AppendKey implements KeyCodec.
func (PrefixKeys) AppendKey(dst []byte, p hierarchy.Prefix) []byte {
	dst = binary.BigEndian.AppendUint32(dst, p.Src)
	dst = binary.BigEndian.AppendUint32(dst, p.Dst)
	return append(dst, p.SrcLen, p.DstLen)
}

// DecodeKey implements KeyCodec.
func (PrefixKeys) DecodeKey(src []byte) (hierarchy.Prefix, error) {
	if len(src) < 10 {
		return hierarchy.Prefix{}, Corruptf("prefix key needs 10 bytes, have %d", len(src))
	}
	p := hierarchy.Prefix{
		Src:    binary.BigEndian.Uint32(src),
		Dst:    binary.BigEndian.Uint32(src[4:]),
		SrcLen: src[8],
		DstLen: src[9],
	}
	if p.SrcLen > hierarchy.AddrBytes || p.DstLen > hierarchy.AddrBytes {
		return hierarchy.Prefix{}, Corruptf("prefix length out of range: /%d,/%d", p.SrcLen, p.DstLen)
	}
	if !p.Canonical() {
		return hierarchy.Prefix{}, Corruptf("non-canonical prefix %v", p)
	}
	return p, nil
}

// Cursor is a bounds-checked reader over a record body. Every read
// either succeeds or records a wrapped ErrCorrupt; callers check
// Err() once at the end of a decode section (reads after an error are
// no-ops returning zero values), which keeps decode loops linear
// instead of festooned with error returns.
type Cursor struct {
	data []byte
	off  int
	err  error
}

// NewCursor returns a cursor over data.
func NewCursor(data []byte) *Cursor { return &Cursor{data: data} }

// Err returns the first read error, nil while healthy.
func (c *Cursor) Err() error { return c.err }

// Remaining returns the unread byte count.
func (c *Cursor) Remaining() int { return len(c.data) - c.off }

// fail records the first error.
func (c *Cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = Corruptf(format, args...)
	}
}

// take returns the next n bytes, or nil after recording an error.
func (c *Cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.Remaining() < n {
		c.fail("need %d bytes, have %d", n, c.Remaining())
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

// Bytes reads the next n raw bytes, returning a subslice of the
// record (not a copy) — callers that retain it must copy. n < 0 is
// recorded as corruption.
func (c *Cursor) Bytes(n int) []byte {
	if n < 0 {
		c.fail("negative byte count %d", n)
		return nil
	}
	return c.take(n)
}

// Uint64 reads a fixed-width big-endian u64.
func (c *Cursor) Uint64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Uint32 reads a fixed-width big-endian u32.
func (c *Cursor) Uint32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Byte reads one byte.
func (c *Cursor) Byte() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Float64 reads a float64 (IEEE bits), rejecting NaN.
func (c *Cursor) Float64() float64 {
	f := math.Float64frombits(c.Uint64())
	if c.err == nil && math.IsNaN(f) {
		c.fail("NaN float field")
		return 0
	}
	return f
}

// Rest consumes and returns every unread byte (a subslice of the
// record, not a copy). Nil after a recorded error.
func (c *Cursor) Rest() []byte { return c.take(c.Remaining()) }

// Uvarint reads an unsigned varint.
func (c *Cursor) Uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail("bad uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// Count reads a uvarint entry count and validates it against both an
// absolute limit and the bytes that remain (each entry occupies at
// least minEntryBytes), so a hostile count can never drive an
// allocation larger than the record itself.
func (c *Cursor) Count(limit int, minEntryBytes int) int {
	v := c.Uvarint()
	if c.err != nil {
		return 0
	}
	if v > uint64(limit) {
		c.fail("count %d exceeds limit %d", v, limit)
		return 0
	}
	if minEntryBytes > 0 && v > uint64(c.Remaining()/minEntryBytes) {
		c.fail("count %d needs %d+ bytes, have %d", v, uint64(minEntryBytes)*v, c.Remaining())
		return 0
	}
	return int(v)
}

// Key reads one key via kc.
func Key[K comparable](c *Cursor, kc KeyCodec[K]) K {
	var zero K
	b := c.take(kc.Width())
	if b == nil {
		return zero
	}
	k, err := kc.DecodeKey(b)
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return zero
	}
	return k
}
