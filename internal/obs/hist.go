// Log-linear histogram: HDR-style fixed bucket layout over the full
// uint64 range in constant memory (~4KB), lock-free to observe,
// mergeable, with p50/p99/p999 extraction from snapshots.

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The bucket layout: values 0..7 map to their own exact bucket;
// above that each power-of-two octave is split into 8 sub-buckets
// (3 significant bits kept), giving ≤12.5% relative error on any
// recorded value. 61 octaves × 8 + 8 exact = 496 buckets total.
const (
	histSubBits = 3
	histSubs    = 1 << histSubBits                      // 8 sub-buckets per octave
	histExact   = histSubs                              // values < 8 are exact
	HistBuckets = histExact + (64-histSubBits)*histSubs // 496
)

// histIndex maps a value to its bucket. For v < 16 the index equals
// the value; beyond that buckets widen geometrically.
//
//memento:noalloc
func histIndex(v uint64) int {
	if v < histExact {
		return int(v)
	}
	major := uint(bits.Len64(v)) - 1 // v ∈ [2^major, 2^(major+1))
	sub := (v >> (major - histSubBits)) & (histSubs - 1)
	return histExact + int(major-histSubBits)*histSubs + int(sub)
}

// histLower returns the smallest value that maps to bucket i.
func histLower(i int) uint64 {
	if i < histExact {
		return uint64(i)
	}
	major := uint(i-histExact)/histSubs + histSubBits
	sub := uint64(i-histExact) % histSubs
	return (histSubs + sub) << (major - histSubBits)
}

// histUpper returns the largest value that maps to bucket i.
func histUpper(i int) uint64 {
	if i < histExact {
		return uint64(i)
	}
	next := i + 1
	if next >= HistBuckets {
		return math.MaxUint64
	}
	return histLower(next) - 1
}

// Histogram records uint64 observations (latency nanoseconds, ring
// occupancies, batch sizes) into a fixed bucket array. Observe is
// wait-free (three relaxed atomic adds); memory never grows. The
// zero value is ready to use; a nil *Histogram is disabled.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records v.
//
//memento:noalloc
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histIndex(v)].Add(1)
}

// Snapshot copies the current state into s (reused across scrapes;
// pass a fresh or recycled snapshot). Buckets are loaded one at a
// time, so a snapshot taken under concurrent writes is a consistent
// set of monotone per-bucket reads, not a single atomic cut — fine
// for quantiles, documented for the pedantic.
func (h *Histogram) Snapshot(s *HistSnapshot) {
	if h == nil || s == nil {
		*s = HistSnapshot{}
		return
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to
// merge, serialize, and query without synchronization.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Merge adds o into s (for cross-shard or cross-node aggregation).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if o == nil {
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean of all observations (0 if empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). The
// estimate is the midpoint of the bucket holding the target rank, so
// the relative error is bounded by the bucket width (≤12.5%).
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			lo, hi := histLower(i), histUpper(i)
			return lo + (hi-lo)/2
		}
	}
	return histUpper(HistBuckets - 1)
}

// P50, P99, P999 are the quantiles the debug endpoints export.
func (s *HistSnapshot) P50() uint64  { return s.Quantile(0.50) }
func (s *HistSnapshot) P99() uint64  { return s.Quantile(0.99) }
func (s *HistSnapshot) P999() uint64 { return s.Quantile(0.999) }

// Max returns the upper bound of the highest non-empty bucket.
func (s *HistSnapshot) Max() uint64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return histUpper(i)
		}
	}
	return 0
}
