// The live debug surface: /debug/metrics (Prometheus text or JSON),
// /debug/events (recent trace ring), and net/http/pprof, bundled
// into one mux the binaries serve behind -debug-addr.

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// eventJSON is the wire shape of a traced event.
type eventJSON struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"unix_nanos"`
	Kind  string `json:"kind"`
	Actor string `json:"actor,omitempty"`
	Value uint64 `json:"value"`
}

// DebugMux bundles the debug endpoints over a registry and trace
// (either may be nil — the endpoints degrade to empty output):
//
//	/debug/metrics           Prometheus text exposition
//	/debug/metrics?format=json   flat JSON object
//	/debug/events            JSON {seq, dropped, events:[...]}; ?n=K tails
//	/debug/pprof/...         the standard runtime profiles
func DebugMux(r *Registry, t *Trace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		events := t.Events(nil)
		if s := req.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		out := struct {
			Seq     uint64      `json:"seq"`
			Dropped uint64      `json:"dropped"`
			Events  []eventJSON `json:"events"`
		}{Seq: t.Seq(), Dropped: t.Dropped(), Events: make([]eventJSON, 0, len(events))}
		for _, e := range events {
			out.Events = append(out.Events, eventJSON{
				Seq: e.Seq, Nanos: e.Nanos, Kind: e.Kind.String(),
				Actor: e.Actor, Value: e.Value,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves DebugMux in the background. The
// returned shutdown closes the listener and in-flight connections.
func Serve(addr string, r *Registry, t *Trace) (shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           DebugMux(r, t),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return srv.Close, nil
}
