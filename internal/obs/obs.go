// Package obs is the observability core: cache-line-padded atomic
// counters and gauges, constant-memory log-linear latency histograms,
// and a ring-buffered structured event trace, all registered in a
// flat Registry exported as Prometheus text, JSON, or a terminal
// table (and served live by DebugMux behind -debug-addr).
//
// The package is dependency-free (stdlib only) and built for hot
// paths: every instrument method is nil-receiver safe, so a layer
// that was never instrumented pays one predictable-not-taken branch
// (benchmarked ≤2ns, see bench_test.go) and zero allocations. The
// enabled path is a single padded atomic op. Instruments follow the
// naming convention memento_<layer>_<name> (DESIGN.md §11).
package obs

import "sync/atomic"

// Counter is a monotonically increasing counter. The value is padded
// to a cache line so counters packed in a struct or registry never
// false-share. The zero value is ready to use; a nil *Counter is a
// valid disabled instrument.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
//
//memento:noalloc
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//memento:noalloc
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 when disabled).
//
//memento:noalloc
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (signed: residencies,
// depths, temperatures). Padded like Counter; nil is disabled.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
//
//memento:noalloc
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
//
//memento:noalloc
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value (0 when disabled).
//
//memento:noalloc
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
