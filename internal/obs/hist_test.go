package obs

import (
	"math/bits"
	"testing"
)

func TestHistIndexSmallValuesExact(t *testing.T) {
	// By construction values below 16 land in a bucket equal to the
	// value itself (8 exact + first octave's sub-buckets are width 1).
	for v := uint64(0); v < 16; v++ {
		if got := histIndex(v); got != int(v) {
			t.Fatalf("histIndex(%d) = %d, want %d", v, got, v)
		}
	}
}

func TestHistBucketBoundsConsistent(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		lo, hi := histLower(i), histUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if got := histIndex(lo); got != i {
			t.Fatalf("histIndex(lower(%d)=%d) = %d", i, lo, got)
		}
		if got := histIndex(hi); got != i {
			t.Fatalf("histIndex(upper(%d)=%d) = %d", i, hi, got)
		}
		if i > 0 && histLower(i) != histUpper(i-1)+1 {
			t.Fatalf("gap between bucket %d and %d", i-1, i)
		}
	}
	if histIndex(1<<63) >= HistBuckets || histIndex(^uint64(0)) != HistBuckets-1 {
		t.Fatal("top of range does not map into the bucket array")
	}
}

func TestHistRelativeError(t *testing.T) {
	// The bucket midpoint must be within 1/8 of any member value.
	for _, v := range []uint64{17, 100, 1000, 12345, 1 << 20, 3<<40 + 7} {
		i := histIndex(v)
		lo, hi := histLower(i), histUpper(i)
		mid := lo + (hi-lo)/2
		diff := int64(mid) - int64(v)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(v)/8+1 {
			t.Fatalf("value %d: midpoint %d off by %d (>12.5%%)", v, mid, diff)
		}
	}
	_ = bits.Len64
}

func TestHistQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	checks := []struct {
		q    float64
		want uint64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {0, 1}, {1, 1000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		lo := float64(c.want) * 0.85
		hi := float64(c.want)*1.15 + 1
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("Quantile(%g) = %d, want within 15%% of %d", c.q, got, c.want)
		}
	}
	if m := s.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %g", m)
	}
	if mx := s.Max(); mx < 1000 || mx > 1150 {
		t.Fatalf("max = %d", mx)
	}
}

func TestHistEmptyAndMerge(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty snapshot must read zero")
	}
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	var sa, sb HistSnapshot
	a.Snapshot(&sa)
	b.Snapshot(&sb)
	sa.Merge(&sb)
	if sa.Count != 200 || sa.Sum != 100*10+100*1000 {
		t.Fatalf("merge lost mass: count=%d sum=%d", sa.Count, sa.Sum)
	}
	// Median of the merged set sits at the boundary; p99 must come
	// from b's mode.
	if p99 := sa.Quantile(0.99); float64(p99) < 1000*0.85 || float64(p99) > 1000*1.15 {
		t.Fatalf("merged p99 = %d", p99)
	}
	sa.Merge(nil)
	if sa.Count != 200 {
		t.Fatal("Merge(nil) must be a no-op")
	}
}
