package obs

import (
	"math/bits"
	"testing"
)

func TestHistIndexSmallValuesExact(t *testing.T) {
	// By construction values below 16 land in a bucket equal to the
	// value itself (8 exact + first octave's sub-buckets are width 1).
	for v := uint64(0); v < 16; v++ {
		if got := histIndex(v); got != int(v) {
			t.Fatalf("histIndex(%d) = %d, want %d", v, got, v)
		}
	}
}

func TestHistBucketBoundsConsistent(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		lo, hi := histLower(i), histUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if got := histIndex(lo); got != i {
			t.Fatalf("histIndex(lower(%d)=%d) = %d", i, lo, got)
		}
		if got := histIndex(hi); got != i {
			t.Fatalf("histIndex(upper(%d)=%d) = %d", i, hi, got)
		}
		if i > 0 && histLower(i) != histUpper(i-1)+1 {
			t.Fatalf("gap between bucket %d and %d", i-1, i)
		}
	}
	if histIndex(1<<63) >= HistBuckets || histIndex(^uint64(0)) != HistBuckets-1 {
		t.Fatal("top of range does not map into the bucket array")
	}
}

func TestHistRelativeError(t *testing.T) {
	// The bucket midpoint must be within 1/8 of any member value.
	for _, v := range []uint64{17, 100, 1000, 12345, 1 << 20, 3<<40 + 7} {
		i := histIndex(v)
		lo, hi := histLower(i), histUpper(i)
		mid := lo + (hi-lo)/2
		diff := int64(mid) - int64(v)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(v)/8+1 {
			t.Fatalf("value %d: midpoint %d off by %d (>12.5%%)", v, mid, diff)
		}
	}
	_ = bits.Len64
}

func TestHistQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	checks := []struct {
		q    float64
		want uint64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {0, 1}, {1, 1000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		lo := float64(c.want) * 0.85
		hi := float64(c.want)*1.15 + 1
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("Quantile(%g) = %d, want within 15%% of %d", c.q, got, c.want)
		}
	}
	if m := s.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %g", m)
	}
	if mx := s.Max(); mx < 1000 || mx > 1150 {
		t.Fatalf("max = %d", mx)
	}
}

func TestHistEmptyAndMerge(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty snapshot must read zero")
	}
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	var sa, sb HistSnapshot
	a.Snapshot(&sa)
	b.Snapshot(&sb)
	sa.Merge(&sb)
	if sa.Count != 200 || sa.Sum != 100*10+100*1000 {
		t.Fatalf("merge lost mass: count=%d sum=%d", sa.Count, sa.Sum)
	}
	// Median of the merged set sits at the boundary; p99 must come
	// from b's mode.
	if p99 := sa.Quantile(0.99); float64(p99) < 1000*0.85 || float64(p99) > 1000*1.15 {
		t.Fatalf("merged p99 = %d", p99)
	}
	sa.Merge(nil)
	if sa.Count != 200 {
		t.Fatal("Merge(nil) must be a no-op")
	}
}

func TestHistEmptyQuantileEdges(t *testing.T) {
	// A zero-value snapshot must answer every quantile — including
	// out-of-range q, which Quantile clamps — with 0, never scan into
	// the bucket array's fallback upper bound.
	var s HistSnapshot
	for _, q := range []float64{-1, 0, 0.5, 0.99, 0.999, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if s.P50() != 0 || s.P99() != 0 || s.P999() != 0 {
		t.Fatal("empty P50/P99/P999 must be 0")
	}
	// Snapshotting a nil histogram must reset a dirty snapshot, not
	// leave stale buckets behind.
	s.Count, s.Buckets[3] = 7, 7
	var nilH *Histogram
	nilH.Snapshot(&s)
	if s.Count != 0 || s.Buckets[3] != 0 || s.P99() != 0 {
		t.Fatal("Snapshot on nil histogram must zero the snapshot")
	}
}

func TestHistSingleBucket(t *testing.T) {
	// All mass in one exact bucket: every quantile is the value
	// itself, exactly (values < 8 have width-1 buckets).
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(5)
	}
	var s HistSnapshot
	h.Snapshot(&s)
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 5 {
			t.Fatalf("single-bucket Quantile(%g) = %d, want 5", q, got)
		}
	}
	if s.Max() != 5 || s.Mean() != 5 {
		t.Fatalf("max=%d mean=%g, want 5", s.Max(), s.Mean())
	}

	// All mass in one log-range bucket: every quantile collapses to
	// that bucket's midpoint, within the 12.5% width bound of the
	// recorded value.
	var hl Histogram
	const v = uint64(1)<<30 + 12345
	for i := 0; i < 1000; i++ {
		hl.Observe(v)
	}
	var sl HistSnapshot
	hl.Snapshot(&sl)
	p0, p50, p100 := sl.Quantile(0), sl.P50(), sl.Quantile(1)
	if p0 != p50 || p50 != p100 {
		t.Fatalf("single-bucket quantiles differ: %d %d %d", p0, p50, p100)
	}
	if float64(p50) < float64(v)*0.875 || float64(p50) > float64(v)*1.125 {
		t.Fatalf("single-bucket p50 = %d, want within 12.5%% of %d", p50, v)
	}
}

func TestHistMergeDisjointOctaves(t *testing.T) {
	// Two snapshots whose mass lives in octaves ~30 apart: the merge
	// must keep both modes addressable — median from the heavy low
	// octave, tail quantiles and Max from the sparse high one — and
	// must commute.
	var lo, hi Histogram
	for i := 0; i < 900; i++ {
		lo.Observe(1 << 10)
	}
	for i := 0; i < 100; i++ {
		hi.Observe(1 << 40)
	}
	var a, b HistSnapshot
	lo.Snapshot(&a)
	hi.Snapshot(&b)

	m := a // copy
	m.Merge(&b)
	if m.Count != 1000 || m.Sum != 900*(1<<10)+100*(1<<40) {
		t.Fatalf("merge lost mass: count=%d sum=%d", m.Count, m.Sum)
	}
	if p50 := m.P50(); float64(p50) > float64(uint64(1)<<10)*1.125 {
		t.Fatalf("merged p50 = %d, want low octave", p50)
	}
	if p99 := m.P99(); float64(p99) < float64(uint64(1)<<40)*0.875 {
		t.Fatalf("merged p99 = %d, want high octave", p99)
	}
	if mx := m.Max(); mx < 1<<40 {
		t.Fatalf("merged max = %d, want >= 2^40", mx)
	}

	// Commutativity: b.Merge(a) answers the same quantiles.
	r := b
	r.Merge(&a)
	if r.Count != m.Count || r.Sum != m.Sum || r.P50() != m.P50() || r.P99() != m.P99() || r.Max() != m.Max() {
		t.Fatal("merge is not commutative")
	}
}
