// The flat metric registry and its three export formats: Prometheus
// text exposition, JSON, and an aligned terminal table.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
)

type metricKind uint8

const (
	mCounter metricKind = iota
	mGauge
	mHist
	mFunc
)

type metric struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	f    func() float64
}

// Registry is a flat, name-ordered set of instruments. All methods
// are safe for concurrent use and nil-receiver safe: code paths
// instrument themselves against a possibly-nil registry and the
// instruments come back nil (disabled) instead of panicking.
//
// Names follow memento_<layer>_<name>; counters end in _total.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	if _, dup := r.metrics[m.name]; !dup {
		r.metrics[m.name] = m
	}
	r.mu.Unlock()
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.kind == mCounter {
		return m.c
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, kind: mCounter, c: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.kind == mGauge {
		return m.g
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, kind: mGauge, g: g}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.kind == mHist {
		return m.h
	}
	h := &Histogram{}
	r.metrics[name] = &metric{name: name, kind: mHist, h: h}
	return h
}

// RegisterCounter exposes an existing counter (one owned by a
// subsystem's struct) under name. First registration wins; nil
// registry or instrument is a no-op.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.add(&metric{name: name, kind: mCounter, c: c})
}

// RegisterGauge exposes an existing gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.add(&metric{name: name, kind: mGauge, g: g})
}

// RegisterHistogram exposes an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.add(&metric{name: name, kind: mHist, h: h})
}

// RegisterFunc exposes a pull-time value: f runs at scrape time, so
// the instrumented hot path pays nothing. Use it to surface existing
// ledgers (shard stats, queue depths) without mirroring writes.
func (r *Registry) RegisterFunc(name string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.add(&metric{name: name, kind: mFunc, f: f})
}

// snapshot returns the metrics sorted by name.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Histograms export as summaries: quantile
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var snap HistSnapshot
	for _, m := range r.snapshot() {
		var err error
		switch m.kind {
		case mCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.c.Load())
		case mGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.g.Load())
		case mFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m.name, m.name, m.f())
		case mHist:
			m.h.Snapshot(&snap)
			_, err = fmt.Fprintf(w,
				"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.99\"} %d\n%s{quantile=\"0.999\"} %d\n%s_sum %d\n%s_count %d\n",
				m.name, m.name, snap.P50(), m.name, snap.P99(), m.name, snap.P999(),
				m.name, snap.Sum, m.name, snap.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the JSON shape of a histogram metric.
type histJSON struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

// WriteJSON writes the registry as one flat JSON object: counters
// and gauges as numbers, histograms as {count,sum,mean,p50,p99,
// p999,max} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	var snap HistSnapshot
	for _, m := range r.snapshot() {
		switch m.kind {
		case mCounter:
			out[m.name] = m.c.Load()
		case mGauge:
			out[m.name] = m.g.Load()
		case mFunc:
			out[m.name] = m.f()
		case mHist:
			m.h.Snapshot(&snap)
			out[m.name] = histJSON{
				Count: snap.Count, Sum: snap.Sum, Mean: snap.Mean(),
				P50: snap.P50(), P99: snap.P99(), P999: snap.P999(), Max: snap.Max(),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTable writes an aligned human-readable table (the final
// summary floodsim/netwidesim print, and mementoctl top's body).
func (r *Registry) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	var snap HistSnapshot
	for _, m := range r.snapshot() {
		switch m.kind {
		case mCounter:
			fmt.Fprintf(tw, "%s\t%d\n", m.name, m.c.Load())
		case mGauge:
			fmt.Fprintf(tw, "%s\t%d\n", m.name, m.g.Load())
		case mFunc:
			fmt.Fprintf(tw, "%s\t%g\n", m.name, m.f())
		case mHist:
			m.h.Snapshot(&snap)
			fmt.Fprintf(tw, "%s\tn=%d mean=%.1f p50=%d p99=%d p999=%d max=%d\n",
				m.name, snap.Count, snap.Mean(), snap.P50(), snap.P99(), snap.P999(), snap.Max())
		}
	}
	return tw.Flush()
}
