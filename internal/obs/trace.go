// Ring-buffered structured event trace for fleet lifecycle: every
// record gets a process-wide sequence number, the ring holds the
// most recent N events, and overwrites of unread history are counted
// rather than silent (the bounded drop-counting writer).

package obs

import (
	"sync"
	"time"
)

// EventKind enumerates the traced lifecycle transitions.
type EventKind uint8

const (
	EvConnect       EventKind = iota + 1 // agent joined a controller (first generation)
	EvReconnect                          // agent re-established after a failure
	EvDisconnect                         // agent connection failed or closed
	EvResync                             // controller demanded a full re-base
	EvQuarantine                         // controller stopped trusting a stale agent
	EvRequalify                          // quarantined agent reported again
	EvDegradedEnter                      // agent fell back to local verdicts
	EvDegradedExit                       // agent recovered to fleet mode
	EvCheckpoint                         // durable checkpoint written
	EvWindowSlide                        // sketch window frame flushed
	EvReportSpan                         // traced report applied (value: capture→apply ns)
	EvAudit                              // audit pass completed (value: bound violations so far)
	evKinds                              // count sentinel
)

var evNames = [evKinds]string{
	EvConnect:       "connect",
	EvReconnect:     "reconnect",
	EvDisconnect:    "disconnect",
	EvResync:        "resync",
	EvQuarantine:    "quarantine",
	EvRequalify:     "requalify",
	EvDegradedEnter: "degraded_enter",
	EvDegradedExit:  "degraded_exit",
	EvCheckpoint:    "checkpoint",
	EvWindowSlide:   "window_slide",
	EvReportSpan:    "report_span",
	EvAudit:         "audit",
}

// String returns the stable lower_snake name used in exports.
//
//memento:noalloc
func (k EventKind) String() string {
	if k == 0 || k >= evKinds {
		return "unknown"
	}
	return evNames[k]
}

// Event is one traced transition. Actor identifies the subject (an
// agent name, a shard label); Value carries a kind-specific payload
// (generation, bytes, window position).
type Event struct {
	Seq   uint64    `json:"seq"`
	Nanos int64     `json:"unix_nanos"`
	Kind  EventKind `json:"-"`
	Actor string    `json:"actor"`
	Value uint64    `json:"value"`
}

// Trace is the bounded event ring. All methods are safe for
// concurrent use; a nil *Trace is a disabled instrument and Record
// on it costs one branch.
type Trace struct {
	mu      sync.Mutex
	seq     uint64
	dropped uint64
	next    int
	ring    []Event
	counts  [evKinds]uint64
}

// NewTrace returns a trace retaining the most recent capacity events
// (minimum 16).
func NewTrace(capacity int) *Trace {
	if capacity < 16 {
		capacity = 16
	}
	return &Trace{ring: make([]Event, capacity)}
}

// Record appends an event. When the ring is full the oldest event is
// overwritten and counted as dropped. Actor must be a pre-existing
// string (an agent name, a constant) — Record never allocates.
//
//memento:noalloc
func (t *Trace) Record(kind EventKind, actor string, value uint64) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.seq++
	if t.seq > uint64(len(t.ring)) {
		t.dropped++
	}
	t.ring[t.next] = Event{Seq: t.seq, Nanos: now, Kind: kind, Actor: actor, Value: value}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if int(kind) < len(t.counts) {
		t.counts[kind]++
	}
	t.mu.Unlock()
}

// Events appends the retained events, oldest first, to buf and
// returns it. Pass a recycled buf to avoid garbage on scrape paths.
func (t *Trace) Events(buf []Event) []Event {
	if t == nil {
		return buf
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.seq)
	if n > len(t.ring) {
		n = len(t.ring)
	}
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		buf = append(buf, t.ring[(start+i)%len(t.ring)])
	}
	return buf
}

// Seq returns the sequence number of the most recent event.
func (t *Trace) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events were overwritten before any
// reader could have seen a full history.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Count returns how many events of kind were ever recorded
// (including dropped ones).
func (t *Trace) Count(kind EventKind) uint64 {
	if t == nil || int(kind) >= len(t.counts) {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// Register exposes the per-kind lifetime counts as funcs named
// <prefix>_events_<kind>_total plus <prefix>_events_dropped_total.
func (t *Trace) Register(r *Registry, prefix string) {
	if t == nil || r == nil {
		return
	}
	for k := EventKind(1); k < evKinds; k++ {
		kind := k
		r.RegisterFunc(prefix+"_events_"+kind.String()+"_total",
			func() float64 { return float64(t.Count(kind)) })
	}
	r.RegisterFunc(prefix+"_events_dropped_total",
		func() float64 { return float64(t.Dropped()) })
}
