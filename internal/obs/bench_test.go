package obs

import "testing"

// The disabled path is the one every hot loop pays when a subsystem
// was never instrumented: a nil receiver check. The acceptance bar
// is ≤2ns/op, 0 allocs (alloc-gated in CI via the instrumented
// ingest benchmark; the latency claim is recorded in DESIGN.md §11).

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeDisabled(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	var t *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record(EvWindowSlide, "bench", uint64(i))
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	t := NewTrace(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record(EvWindowSlide, "bench", uint64(i))
	}
}
