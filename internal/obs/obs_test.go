package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(10)
	tr.Record(EvConnect, "x", 1)
	if c.Load() != 0 || g.Load() != 0 || tr.Seq() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if got := tr.Events(nil); len(got) != 0 {
		t.Fatalf("nil trace returned %d events", len(got))
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.RegisterFunc("x", func() float64 { return 0 })
}

func TestInstrumentPadding(t *testing.T) {
	if s := unsafe.Sizeof(Counter{}); s != 64 {
		t.Fatalf("Counter is %d bytes, want one cache line (64)", s)
	}
	if s := unsafe.Sizeof(Gauge{}); s != 64 {
		t.Fatalf("Gauge is %d bytes, want one cache line (64)", s)
	}
}

func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("memento_test_total")
	b := r.Counter("memento_test_total")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("aliased counter did not share state")
	}
	if r.Histogram("memento_test_hist") != r.Histogram("memento_test_hist") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestWritePrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("memento_test_packets_total").Add(123)
	r.Gauge("memento_test_depth").Set(-4)
	r.Histogram("memento_test_latency_ns").Observe(1000)
	r.RegisterFunc("memento_test_live", func() float64 { return 2.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// Every non-comment line must be "<name or name{labels}> <value>".
	sc := bufio.NewScanner(&buf)
	samples := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		samples[fields[0]] = true
	}
	for _, want := range []string{
		"memento_test_packets_total",
		"memento_test_depth",
		"memento_test_live",
		`memento_test_latency_ns{quantile="0.99"}`,
		"memento_test_latency_ns_count",
		"memento_test_latency_ns_sum",
	} {
		if !samples[want] {
			t.Fatalf("exposition missing sample %q; got %v", want, samples)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("memento_test_total").Add(9)
	r.Histogram("memento_test_hist").Observe(5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if out["memento_test_total"].(float64) != 9 {
		t.Fatalf("counter lost in JSON: %v", out)
	}
	h := out["memento_test_hist"].(map[string]any)
	if h["count"].(float64) != 1 || h["p50"].(float64) != 5 {
		t.Fatalf("hist lost in JSON: %v", h)
	}
}

func TestTraceRingAndDrops(t *testing.T) {
	tr := NewTrace(16)
	for i := 0; i < 40; i++ {
		tr.Record(EvWindowSlide, "s", uint64(i))
	}
	ev := tr.Events(nil)
	if len(ev) != 16 {
		t.Fatalf("ring retained %d events, want 16", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(25+i) {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, e.Seq, 25+i)
		}
	}
	if got := tr.Dropped(); got != 24 {
		t.Fatalf("dropped = %d, want 24", got)
	}
	if got := tr.Count(EvWindowSlide); got != 40 {
		t.Fatalf("count = %d, want 40", got)
	}
	if tr.Seq() != 40 {
		t.Fatalf("seq = %d, want 40", tr.Seq())
	}
}

func TestTraceConcurrentSeqUnique(t *testing.T) {
	tr := NewTrace(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				tr.Record(EvConnect, "w", 0)
			}
		}()
	}
	wg.Wait()
	ev := tr.Events(nil)
	if len(ev) != 2048 {
		t.Fatalf("retained %d, want 2048", len(ev))
	}
	seen := map[uint64]bool{}
	for _, e := range ev {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestTraceRegisterExportsCounts(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace(16)
	tr.Record(EvQuarantine, "a", 0)
	tr.Record(EvQuarantine, "b", 0)
	tr.Register(r, "memento_fleet")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["memento_fleet_events_quarantine_total"].(float64) != 2 {
		t.Fatalf("trace counts not exported: %v", out)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("memento_test_total").Add(3)
	tr := NewTrace(16)
	tr.Record(EvCheckpoint, "ckpt", 77)
	srv := httptest.NewServer(DebugMux(r, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	if body := get("/debug/metrics"); !strings.Contains(body, "memento_test_total 3") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	var js map[string]any
	if err := json.Unmarshal([]byte(get("/debug/metrics?format=json")), &js); err != nil {
		t.Fatal(err)
	}
	var evs struct {
		Seq    uint64 `json:"seq"`
		Events []struct {
			Kind  string `json:"kind"`
			Actor string `json:"actor"`
			Value uint64 `json:"value"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/debug/events")), &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Seq != 1 || len(evs.Events) != 1 || evs.Events[0].Kind != "checkpoint" || evs.Events[0].Value != 77 {
		t.Fatalf("events payload wrong: %+v", evs)
	}
}
